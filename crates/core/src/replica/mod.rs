//! The replica: one sans-io state machine combining every role.
//!
//! A replica is simultaneously an *acceptor* (promise/accept bookkeeping on
//! stable storage), a *learner* (applying chosen decrees to the service in
//! instance order) and — at most one at a time — a *leader* or *candidate*.
//! All I/O is expressed as returned [`Action`]s; all time is passed in.
//!
//! The module is split by role: this file holds the shared state, message
//! dispatch, acceptor duties, the apply pipeline and step-down;
//! `leader`-role logic (proposals, X-Paxos reads, T-Paxos transactions)
//! lives in `leader.rs`; election and takeover live in `candidate.rs`.

mod candidate;
mod leader;

pub use candidate::CandidateState;
pub use leader::{LeaderState, PendingRead, TxnSession};

use crate::action::{Action, TimerKind};
use crate::ballot::Ballot;
use crate::command::{Command, Decree, DedupEntry, SnapshotBlob};
use crate::config::{Config, ValueMode};
use crate::election::{ElectionPacer, FailureDetector};
use crate::log::ReplicaLog;
use crate::msg::Msg;
use crate::request::{Reply, ReplyBody};
use crate::service::{App, ExecCtx};
use crate::storage::Storage;
use crate::types::{Addr, ClientId, Dur, Instance, ProcessId, Seq, Time, TxnId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The role a replica currently plays.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one Role per replica; size is irrelevant
pub enum Role {
    /// Passive: accepts, learns, confirms reads, watches the leader.
    Follower,
    /// Running the prepare phase of an election.
    Candidate(CandidateState),
    /// Sequencing client requests.
    Leader(LeaderState),
}

impl Role {
    /// Short name for traces.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Role::Follower => "follower",
            Role::Candidate(_) => "candidate",
            Role::Leader(_) => "leader",
        }
    }
}

/// Protocol-relevant snapshot of a replica's control state, produced by
/// [`Replica::checker_view`] for the model checker (`crates/check`).
#[derive(Clone, Debug)]
pub struct CheckerView {
    /// Role name: `"follower"`, `"candidate"` or `"leader"`.
    pub role: &'static str,
    /// Highest ballot this replica has promised.
    pub promised: crate::ballot::Ballot,
    /// Instances `< chosen_prefix` are contiguously chosen.
    pub chosen_prefix: Instance,
    /// Leader only: the next instance it would assign.
    pub next_instance: Option<Instance>,
    /// Leader only: no Accept batch in flight and no recovery outstanding.
    pub quiescent: bool,
    /// Leader only: open (uncommitted) T-Paxos sessions.
    pub open_txns: usize,
    /// Whether a leader-side tentative execution is pending (§3.3: the
    /// leader executes before the decree is chosen).
    pub tentative_exec: bool,
}

/// Sorted copy of a hash-set's contents, so fingerprints don't depend on
/// iteration order.
fn sorted<T: Ord + Copy>(set: &std::collections::HashSet<T>) -> Vec<T> {
    let mut v: Vec<T> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

/// Observable counters, used by tests and the benchmark harness.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStats {
    /// Consensus instances this replica committed as leader.
    pub commits_led: u64,
    /// Reads answered via the X-Paxos fast path.
    pub xpaxos_reads: u64,
    /// Of those, reads validated by an epoch-confirm round rather than
    /// per-read confirm votes (extension).
    pub batched_reads: u64,
    /// Epoch-confirm rounds launched as leader (extension).
    pub confirm_rounds: u64,
    /// Reads answered locally under a leader lease (extension).
    pub lease_reads: u64,
    /// Reads answered through full consensus.
    pub consensus_reads: u64,
    /// "Original" (uncoordinated) requests answered.
    pub originals: u64,
    /// Elections started by this replica.
    pub elections_started: u64,
    /// Times this replica won an election.
    pub elections_won: u64,
    /// Times this replica stepped down from leader/candidate.
    pub step_downs: u64,
    /// Decrees applied to the local service.
    pub applied: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total bytes written across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Total chunks emitted across all checkpoints (a monolithic
    /// checkpoint counts as one chunk).
    pub checkpoint_chunks: u64,
    /// Size of the most recent checkpoint, in bytes.
    pub last_checkpoint_bytes: u64,
    /// Chunk count of the most recent checkpoint.
    pub last_checkpoint_chunks: u64,
    /// Wall time from freeze to commit of the most recent checkpoint (as
    /// observed via the drive clock; zero when taken inline).
    pub last_checkpoint_dur: Dur,
    /// Catch-up requests served.
    pub catchups_served: u64,
    /// T-Paxos transactions committed by this replica as leader.
    pub txns_committed: u64,
    /// Transactions aborted (any reason) by this replica as leader.
    pub txns_aborted: u64,
}

/// Progress of an in-flight incremental checkpoint: the service state is
/// frozen (`App::snapshot_begin`) and chunks stream to storage across drive
/// cycles via [`Replica::pump_checkpoint`].
struct CkptProgress {
    /// Chosen prefix the frozen state reflects.
    upto: Instance,
    /// Total chunks the app promised at freeze.
    total: usize,
    /// Next chunk index to emit.
    next: usize,
    /// Bytes emitted so far.
    bytes: u64,
    /// Drive-clock time at freeze, for duration metrics.
    started: Time,
}

/// Reassembly buffer for a chunked snapshot transfer
/// ([`Msg::CatchUpChunk`]). Keyed by `upto`: chunks for a different
/// snapshot reset the buffer (the newer transfer supersedes).
struct CatchUpBuf {
    upto: Instance,
    dedup: Vec<DedupEntry>,
    chunks: Vec<Option<bytes::Bytes>>,
}

/// A replicated-service process.
pub struct Replica {
    pub(crate) id: ProcessId,
    pub(crate) cfg: Config,
    pub(crate) app: Box<dyn App>,
    pub(crate) storage: Box<dyn Storage>,
    pub(crate) rng: SmallRng,
    /// Highest ballot promised; never accept or promise below it.
    pub(crate) promised: Ballot,
    /// Highest ballot observed anywhere (for outbidding).
    pub(crate) max_ballot_seen: Ballot,
    pub(crate) log: ReplicaLog,
    /// At-most-once table: last executed seq + reply per client.
    pub(crate) dedup: HashMap<ClientId, (Seq, ReplyBody)>,
    pub(crate) fd: FailureDetector,
    pub(crate) pacer: ElectionPacer,
    pub(crate) role: Role,
    /// Instance whose decree the local service already reflects because we
    /// executed it ourselves as leader (skip re-applying on commit).
    pub(crate) self_executed: Option<Instance>,
    /// Service snapshot taken just before a tentative leader-side
    /// execution; restored if leadership is lost before commit. Only used
    /// when the app does not support undo-log tentative execution
    /// ([`App::tentative_begin`] returned `false`).
    pub(crate) pre_exec: Option<bytes::Bytes>,
    /// A tentative leader-side execution is tracked by the app's own undo
    /// log ([`App::tentative_begin`] returned `true`): commit/rollback go
    /// through the `tentative_*` hooks instead of a `pre_exec` snapshot.
    pub(crate) tentative: bool,
    pub(crate) last_checkpoint: Instance,
    /// In-flight incremental checkpoint, if any (at most one at a time).
    ckpt: Option<CkptProgress>,
    /// Chunked catch-up reassembly buffer.
    catchup_buf: Option<CatchUpBuf>,
    /// Drive-loop clock: the `now` of the most recent entry point. Only
    /// used for observability (checkpoint durations) — never for protocol
    /// decisions — and excluded from [`Replica::fingerprint`].
    clock: Time,
    /// Last catch-up request we sent: `(our prefix then, when)`. Suppresses
    /// duplicates while one is outstanding, but ages out after a
    /// retransmission timeout so a lost request or response is retried.
    pub(crate) catchup_requested_at: Option<(Instance, Time)>,
    /// Follower-side: the leader's confirm rounds reported a read backlog,
    /// so per-read X-Paxos confirms are suppressed — the round traffic
    /// replaces them (extension). Purely a performance switch: it can only
    /// reduce confirm traffic, never answer a read.
    pub(crate) confirm_suppressed: bool,
    /// Observability counters.
    pub stats: ReplicaStats,
}

impl Replica {
    /// Create a fresh replica (empty log and service).
    #[must_use]
    pub fn new(
        id: ProcessId,
        cfg: Config,
        app: Box<dyn App>,
        storage: Box<dyn Storage>,
        seed: u64,
        now: Time,
    ) -> Replica {
        let fd = FailureDetector::new(cfg.suspect_timeout, now);
        let pacer = ElectionPacer::new(cfg.election_backoff, id.0);
        Replica {
            id,
            cfg,
            app,
            storage,
            rng: SmallRng::seed_from_u64(seed ^ (u64::from(id.0) << 32)),
            promised: Ballot::ZERO,
            max_ballot_seen: Ballot::ZERO,
            log: ReplicaLog::new(),
            dedup: HashMap::new(),
            fd,
            pacer,
            role: Role::Follower,
            self_executed: None,
            pre_exec: None,
            tentative: false,
            last_checkpoint: Instance::ZERO,
            ckpt: None,
            catchup_buf: None,
            clock: now,
            catchup_requested_at: None,
            confirm_suppressed: false,
            stats: ReplicaStats::default(),
        }
    }

    /// Recover a replica after a crash: reload durable state, restore the
    /// service from the last checkpoint and re-apply logged chosen decrees.
    #[must_use]
    pub fn recover(
        id: ProcessId,
        cfg: Config,
        mut app: Box<dyn App>,
        storage: Box<dyn Storage>,
        seed: u64,
        now: Time,
    ) -> Replica {
        let durable = storage.load();
        let mut dedup: HashMap<ClientId, (Seq, ReplyBody)> = HashMap::new();
        let mut replay_from = Instance::ZERO;
        if let Some(ckpt) = &durable.checkpoint {
            app.restore(&ckpt.app);
            for e in &ckpt.dedup {
                dedup.insert(e.client, (e.seq, e.reply.clone()));
            }
            replay_from = ckpt.upto;
        }
        let log = ReplicaLog::from_durable(&durable);

        let mut replica = Replica {
            id,
            cfg,
            app,
            storage,
            rng: SmallRng::seed_from_u64(seed ^ (u64::from(id.0) << 32) ^ 0x5eed),
            promised: durable.promised,
            max_ballot_seen: durable.promised,
            log,
            dedup,
            fd: FailureDetector::new(Dur::ZERO, now), // replaced below
            pacer: ElectionPacer::new(Dur::ZERO, id.0), // replaced below
            role: Role::Follower,
            self_executed: None,
            pre_exec: None,
            tentative: false,
            last_checkpoint: replay_from,
            ckpt: None,
            catchup_buf: None,
            clock: now,
            catchup_requested_at: None,
            confirm_suppressed: false,
            stats: ReplicaStats::default(),
        };
        replica.fd = FailureDetector::new(replica.cfg.suspect_timeout, now);
        replica.pacer = ElectionPacer::new(replica.cfg.election_backoff, id.0);

        // Re-apply chosen decrees between the checkpoint and the durable
        // chosen prefix. They are in the log (truncation only happens at
        // checkpoints) and are guaranteed to be the chosen values (the
        // prefix is persisted only after applying).
        let upto = replica.log.chosen_prefix();
        let mut i = replay_from.next();
        while i <= upto {
            let Some(decree) = replica.log.get(i).map(|(_, d)| d.clone()) else {
                // Storage invariant: the WAL retains every entry above the
                // last checkpoint (truncation only happens at checkpoints,
                // and the chosen prefix is persisted only after the entry
                // is). A hole here means the durable state is corrupt, and
                // resuming from it would silently fork the replica's state
                // — halt instead (crash-stop model).
                panic!("recover: durable log is missing instance {i:?} inside (checkpoint, chosen_prefix]");
            };
            replica.apply_to_service(i, &decree);
            i = i.next();
        }
        replica
    }

    // ------------------------------------------------------------------
    // Accessors (tests, harness)
    // ------------------------------------------------------------------

    /// This replica's id.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The replica's configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Current role.
    #[must_use]
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// Whether this replica currently leads.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        matches!(self.role, Role::Leader(_))
    }

    /// Highest promised ballot.
    #[must_use]
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// Contiguous chosen-and-applied prefix.
    #[must_use]
    pub fn chosen_prefix(&self) -> Instance {
        self.log.chosen_prefix()
    }

    /// Snapshot of the service state (for consistency assertions).
    #[must_use]
    pub fn service_snapshot(&self) -> bytes::Bytes {
        self.app.snapshot()
    }

    /// The replica's view of who leads (the proposer of the ballot it
    /// follows), if any leadership was ever observed.
    #[must_use]
    pub fn leader_hint(&self) -> Option<ProcessId> {
        let b = self.fd.leader_ballot().max(self.promised);
        if b.is_zero() {
            None
        } else {
            Some(b.proposer)
        }
    }

    /// Immutable access to the service (tests downcast).
    #[must_use]
    pub fn app(&self) -> &dyn App {
        self.app.as_ref()
    }

    /// Number of log entries currently retained.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Consume the replica (a crash) and keep only what survives: the
    /// stable storage. A later [`Replica::recover`] resumes from it.
    #[must_use]
    pub fn into_storage(self) -> Box<dyn Storage> {
        self.storage
    }

    /// Durability barrier ([`Storage::flush`]): everything the handlers
    /// persisted so far is on stable storage when this returns. The drive
    /// loop must call it before transmitting any message produced by those
    /// handlers — persist-before-send at batch granularity (§3.1/§3.3).
    pub fn flush_storage(&mut self) {
        self.storage.flush();
    }

    /// Whether storage holds records awaiting a [`Replica::flush_storage`]
    /// barrier.
    #[must_use]
    pub fn storage_dirty(&self) -> bool {
        self.storage.is_dirty()
    }

    /// Total persist operations this replica's storage has recorded
    /// ([`Storage::write_count`]).
    #[must_use]
    pub fn storage_writes(&self) -> u64 {
        self.storage.write_count()
    }

    // ------------------------------------------------------------------
    // Checker hooks (`crates/check`): inspection and state fingerprinting
    // ------------------------------------------------------------------

    /// Protocol-relevant summary of this replica's control state, consumed
    /// by the model checker's invariant assertions.
    #[must_use]
    pub fn checker_view(&self) -> CheckerView {
        let (next_instance, quiescent, open_txns) = match &self.role {
            Role::Leader(l) => (
                Some(l.next_instance),
                l.inflight.is_none() && l.recovery.is_none(),
                l.txns.len(),
            ),
            _ => (None, false, 0),
        };
        CheckerView {
            role: self.role.name(),
            promised: self.promised,
            chosen_prefix: self.log.chosen_prefix(),
            next_instance,
            quiescent,
            open_txns,
            tentative_exec: self.self_executed.is_some(),
        }
    }

    /// Digest of every retained log entry this replica knows *chosen*, as
    /// `(instance, decree digest)` pairs in instance order. Two replicas
    /// that decided different decrees for the same instance produce
    /// different digests — the checker's agreement assertion (§3.3).
    #[must_use]
    pub fn chosen_digests(&self) -> Vec<(Instance, u64)> {
        self.log
            .iter_accepted()
            .filter(|(i, _)| self.log.is_known_chosen(*i))
            .map(|(i, (_, d))| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                d.hash(&mut h);
                (i, h.finish())
            })
            .collect()
    }

    /// Order-independent fingerprint of the replica's complete protocol
    /// state, for the model checker's visited-set pruning.
    ///
    /// Deliberate abstractions: raw timestamps (`fd` deadlines, read
    /// arrival times, lease expiries) and the RNG position are excluded —
    /// the checker explores timer firings as nondeterministic events, so
    /// two states differing only in clock or jitter values are equivalent
    /// under its transition relation. Everything that determines message
    /// handling is included.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.id.hash(&mut h);
        self.promised.hash(&mut h);
        self.max_ballot_seen.hash(&mut h);
        self.confirm_suppressed.hash(&mut h);
        self.last_checkpoint.hash(&mut h);
        self.self_executed.hash(&mut h);
        self.tentative.hash(&mut h);
        // Incremental-checkpoint and chunked catch-up progress (shape
        // only; the drive clock stays excluded like all raw timestamps).
        if let Some(ck) = &self.ckpt {
            (ck.upto, ck.total, ck.next, ck.bytes).hash(&mut h);
        }
        if let Some(buf) = &self.catchup_buf {
            buf.upto.hash(&mut h);
            buf.dedup.hash(&mut h);
            buf.chunks.hash(&mut h);
        }
        self.fd.leader_ballot().hash(&mut h);
        // Log: prefix, retained entries, out-of-order chosen marks.
        self.log.chosen_prefix().hash(&mut h);
        for (i, (b, d)) in self.log.iter_accepted() {
            (i, b, d).hash(&mut h);
        }
        self.log.known_above().hash(&mut h);
        // Dedup table, in client order (HashMap iteration is arbitrary).
        let mut dedup: Vec<_> = self.dedup.iter().collect();
        dedup.sort_unstable_by_key(|(c, _)| **c);
        dedup.hash(&mut h);
        // Service state.
        self.app.snapshot().hash(&mut h);
        // Role internals.
        match &self.role {
            Role::Follower => 0u8.hash(&mut h),
            Role::Candidate(c) => {
                1u8.hash(&mut h);
                c.ballot.hash(&mut h);
                let mut promises: Vec<_> = c.promises.iter().collect();
                promises.sort_unstable_by_key(|(p, _)| **p);
                for (p, info) in promises {
                    p.hash(&mut h);
                    info.accepted.hash(&mut h);
                    info.snapshot.hash(&mut h);
                }
            }
            Role::Leader(l) => {
                2u8.hash(&mut h);
                l.ballot.hash(&mut h);
                l.next_instance.hash(&mut h);
                l.queue.hash(&mut h);
                if let Some(inf) = &l.inflight {
                    inf.instance.hash(&mut h);
                    sorted(&inf.acks).hash(&mut h);
                } else {
                    u64::MAX.hash(&mut h);
                }
                if let Some(rec) = &l.recovery {
                    rec.pending.hash(&mut h);
                    let mut acks: Vec<_> = rec.acks.iter().collect();
                    acks.sort_unstable_by_key(|(i, _)| **i);
                    for (i, set) in acks {
                        (i, sorted(set)).hash(&mut h);
                    }
                }
                let mut reads: Vec<_> = l.reads.iter().collect();
                reads.sort_unstable_by_key(|(id, _)| **id);
                for (id, p) in reads {
                    (id, sorted(&p.votes), &p.result, p.epoch, p.confirmed).hash(&mut h);
                }
                let mut early: Vec<_> = l.early_confirms.iter().collect();
                early.sort_unstable_by_key(|(id, _)| **id);
                for (id, set) in early {
                    (id, sorted(set)).hash(&mut h);
                }
                l.early_order.hash(&mut h);
                l.confirm_epoch.hash(&mut h);
                if let Some(round) = &l.confirm_round {
                    (round.epoch, round.backlog, sorted(&round.acks)).hash(&mut h);
                }
                l.last_round_covered.hash(&mut h);
                l.suppress_hinted.hash(&mut h);
                let mut txns: Vec<_> = l.txns.iter().collect();
                txns.sort_unstable_by_key(|(k, _)| **k);
                for (k, sess) in txns {
                    (k, &sess.ops).hash(&mut h);
                }
                let mut committing: Vec<_> = l.committing.iter().collect();
                committing.sort_unstable_by_key(|(id, _)| **id);
                for (id, (k, sess)) in committing {
                    (id, k, &sess.ops).hash(&mut h);
                }
                (l.hb_seq, sorted(&l.hb_acks)).hash(&mut h);
                (l.last_batch, l.window_armed, l.window_rearms).hash(&mut h);
            }
        }
        h.finish()
    }

    /// Chaos hook for checker self-tests (`check-hooks` feature only):
    /// advance the leader's `next_instance` without proposing anything,
    /// manufacturing exactly the pipeline gap §3.3's strict pipelining
    /// forbids. Returns whether the mutation applied (i.e. we lead).
    /// Never called by production code.
    #[cfg(feature = "check-hooks")]
    pub fn chaos_skip_instance(&mut self) -> bool {
        if let Role::Leader(l) = &mut self.role {
            l.next_instance = l.next_instance.next();
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    /// Called once when the process starts (fresh or recovered).
    pub fn on_start(&mut self, now: Time) -> Vec<Action> {
        let mut out = Vec::new();
        // Everyone watches for a leader. Jitter the first check so
        // leaderless bootstraps don't produce simultaneous candidacies.
        let jitter = Dur(self.rng.gen_range(0..=self.cfg.election_backoff.0));
        out.push(Action::timer(
            TimerKind::LeaderCheck,
            self.cfg.suspect_timeout + jitter,
        ));
        if self.cfg.bootstrap_leader == Some(self.id) {
            self.start_election(now, &mut out);
        }
        out
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, from: Addr, msg: Msg, now: Time) -> Vec<Action> {
        self.clock = self.clock.max(now);
        let mut out = Vec::new();
        match msg {
            Msg::Request(req) => self.handle_request(req, now, &mut out),
            Msg::Prepare {
                ballot,
                chosen_prefix,
                known_above,
            } => self.handle_prepare(from, ballot, chosen_prefix, &known_above, now, &mut out),
            Msg::Promise {
                ballot,
                chosen_prefix,
                accepted,
                snapshot,
            } => self.handle_promise(
                from,
                ballot,
                chosen_prefix,
                accepted,
                snapshot,
                now,
                &mut out,
            ),
            Msg::PrepareNack { ballot, promised } => {
                self.handle_prepare_nack(ballot, promised, now, &mut out)
            }
            Msg::Accept { ballot, entries } => {
                self.handle_accept(from, ballot, entries, now, &mut out)
            }
            Msg::Accepted { ballot, instances } => {
                self.handle_accepted(from, ballot, &instances, now, &mut out)
            }
            Msg::AcceptNack { promised, .. } => {
                self.note_ballot(promised);
                if self.leading_ballot().is_some_and(|b| b < promised) {
                    self.step_down(promised, now, &mut out);
                }
            }
            Msg::Chosen { ballot, upto } => self.handle_chosen(ballot, upto, now, &mut out),
            Msg::Confirm { ballot, read } => self.handle_confirm(from, ballot, read, now, &mut out),
            Msg::ConfirmReq {
                ballot,
                epoch,
                backlog,
            } => self.handle_confirm_req(ballot, epoch, backlog, now, &mut out),
            Msg::ConfirmBatch { ballot, epoch } => {
                self.handle_confirm_batch(from, ballot, epoch, now, &mut out)
            }
            Msg::Heartbeat {
                ballot,
                chosen,
                hb_seq,
            } => {
                self.handle_chosen(ballot, chosen, now, &mut out);
                // Lease mode: grant the leader a lease vote by acking.
                if self.cfg.read_mode == crate::config::ReadMode::Lease
                    && ballot >= self.promised
                    && !self.is_leader()
                {
                    out.push(Action::send(
                        Addr::Replica(ballot.proposer),
                        Msg::HeartbeatAck { ballot, hb_seq },
                    ));
                }
            }
            Msg::HeartbeatAck { ballot, hb_seq } => {
                self.handle_heartbeat_ack(from, ballot, hb_seq, now)
            }
            Msg::CatchUpReq { have } => self.handle_catchup_req(from, have, &mut out),
            Msg::CatchUp {
                ballot,
                entries,
                snapshot,
                upto,
            } => self.handle_catchup(ballot, entries, snapshot, upto, now, &mut out),
            Msg::CatchUpChunk {
                ballot,
                upto,
                seq,
                total,
                dedup,
                data,
            } => self.handle_catchup_chunk(ballot, upto, seq, total, dedup, data, now, &mut out),
            Msg::Reply(_) => {} // replicas never receive replies
            // A bare replica is a single-group deployment; the envelope can
            // only mean group 0, so unwrap it. Multi-group routing happens
            // one layer up, in [`crate::multi::MultiReplica`].
            Msg::Grouped { inner, .. } => return self.on_message(from, *inner, now),
        }
        out
    }

    /// Handle a timer firing.
    pub fn on_timer(&mut self, kind: TimerKind, now: Time) -> Vec<Action> {
        self.clock = self.clock.max(now);
        // Timers double as a progress guarantee for incremental
        // checkpoints on otherwise-idle replicas.
        self.pump_checkpoint(1);
        let mut out = Vec::new();
        match kind {
            TimerKind::LeaderCheck => {
                if matches!(self.role, Role::Follower) && self.fd.suspects(now) {
                    self.start_election(now, &mut out);
                    out.push(Action::timer(
                        TimerKind::LeaderCheck,
                        self.cfg.suspect_timeout,
                    ));
                } else {
                    let next = match self.role {
                        Role::Follower => self.fd.next_check(now).max(Dur(1)),
                        _ => self.cfg.suspect_timeout,
                    };
                    out.push(Action::timer(TimerKind::LeaderCheck, next));
                }
            }
            TimerKind::Heartbeat => self.on_heartbeat_timer(now, &mut out),
            TimerKind::Retransmit => self.on_retransmit_timer(now, &mut out),
            TimerKind::Election => self.on_election_timer(now, &mut out),
            TimerKind::BatchWindow => self.on_batch_window_timer(now, &mut out),
            TimerKind::ClientRetry => {} // client-only timer
        }
        out
    }

    // ------------------------------------------------------------------
    // Acceptor duties
    // ------------------------------------------------------------------

    pub(crate) fn note_ballot(&mut self, b: Ballot) {
        if b > self.max_ballot_seen {
            self.max_ballot_seen = b;
        }
    }

    /// The ballot under which this replica is leading or campaigning.
    pub(crate) fn leading_ballot(&self) -> Option<Ballot> {
        match &self.role {
            Role::Leader(l) => Some(l.ballot),
            Role::Candidate(c) => Some(c.ballot),
            Role::Follower => None,
        }
    }

    fn handle_prepare(
        &mut self,
        from: Addr,
        ballot: Ballot,
        cand_prefix: Instance,
        known_above: &[Instance],
        now: Time,
        out: &mut Vec<Action>,
    ) {
        self.note_ballot(ballot);
        if ballot < self.promised {
            out.push(Action::send(
                from,
                Msg::PrepareNack {
                    ballot,
                    promised: self.promised,
                },
            ));
            return;
        }
        // A higher (or re-sent equal) ballot: yield to it.
        if self.leading_ballot().is_some_and(|b| b < ballot) {
            self.step_down(ballot, now, out);
        }
        if ballot > self.promised {
            self.promised = ballot;
            self.storage.save_promised(ballot);
            // A new leadership starts with per-read confirms enabled; its
            // own rounds will re-establish suppression if load warrants.
            self.confirm_suppressed = false;
        }
        // Grant the candidate failure-detection grace to finish.
        self.fd.observe(ballot, now);

        let my_prefix = self.log.chosen_prefix();
        let snapshot = if my_prefix > cand_prefix {
            Some(self.make_snapshot())
        } else {
            None
        };
        let floor = my_prefix.max(cand_prefix);
        let accepted = self.log.entries_above(floor, known_above);
        out.push(Action::send(
            from,
            Msg::Promise {
                ballot,
                chosen_prefix: my_prefix,
                accepted,
                snapshot,
            },
        ));
    }

    fn handle_accept(
        &mut self,
        from: Addr,
        ballot: Ballot,
        entries: Vec<(Instance, Decree)>,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        self.note_ballot(ballot);
        if ballot < self.promised {
            out.push(Action::send(
                from,
                Msg::AcceptNack {
                    ballot,
                    promised: self.promised,
                },
            ));
            return;
        }
        if self.leading_ballot().is_some_and(|b| b < ballot) {
            self.step_down(ballot, now, out);
        }
        if ballot > self.promised {
            self.promised = ballot;
            self.storage.save_promised(ballot);
        }
        self.fd.observe(ballot, now);

        let mut acked = Vec::with_capacity(entries.len());
        for (i, d) in entries {
            if i > self.log.chosen_prefix() {
                self.storage.save_accepted(i, ballot, &d);
                self.log.record_accept(i, ballot, d);
            }
            // Instances at or below the prefix were already applied; the
            // acceptance is vacuously satisfied, so still acknowledge.
            acked.push(i);
        }
        out.push(Action::send(
            from,
            Msg::Accepted {
                ballot,
                instances: acked,
            },
        ));
    }

    /// Shared handler for `Chosen` and `Heartbeat`: both certify that every
    /// instance `<= upto` proposed under `ballot` is chosen.
    fn handle_chosen(&mut self, ballot: Ballot, upto: Instance, now: Time, out: &mut Vec<Action>) {
        self.note_ballot(ballot);
        if ballot < self.promised {
            return; // stale leadership
        }
        if self.leading_ballot().is_some_and(|b| b < ballot) {
            self.step_down(ballot, now, out);
        }
        if ballot > self.promised {
            // A leader we never promised (we missed the prepare); a
            // majority promised it, so following it is safe.
            self.promised = ballot;
            self.storage.save_promised(ballot);
        }
        self.fd.observe(ballot, now);
        if self.leading_ballot() == Some(ballot) {
            return; // our own leadership; we track commits directly
        }

        // Mark chosen every instance we hold the matching-ballot entry for.
        // An entry accepted under a *different* ballot is not necessarily
        // the chosen value, so it requires catch-up instead.
        let mut need_catchup = false;
        let mut i = self.log.chosen_prefix().next();
        while i <= upto {
            if !self.log.is_known_chosen(i) {
                match self.log.get(i) {
                    Some((b, _)) if *b == ballot => self.log.mark_chosen(i),
                    _ => need_catchup = true,
                }
            }
            i = i.next();
        }
        self.drain_apply(now, out);

        if need_catchup || self.log.chosen_prefix() < upto {
            let have = self.log.chosen_prefix();
            // Suppress duplicates while a request for this prefix is out,
            // but retry once the previous one has plausibly been lost.
            let fresh = matches!(
                self.catchup_requested_at,
                Some((h, t)) if h == have
                    && now.since(t) < self.cfg.retransmit_timeout
            );
            if !fresh {
                self.catchup_requested_at = Some((have, now));
                out.push(Action::send(
                    Addr::Replica(ballot.proposer),
                    Msg::CatchUpReq { have },
                ));
            }
        }
    }

    /// The leader sealed confirm epoch `epoch` (extension): answer with a
    /// single [`Msg::ConfirmBatch`] that validates every read it opened in
    /// that epoch — "I have accepted no ballot higher than `ballot`" holds
    /// here, after all of those reads arrived, which is exactly what one
    /// per-read confirm certifies. A deposed leader's round gets no answer
    /// (we promised higher), so it can never reach a majority.
    fn handle_confirm_req(
        &mut self,
        ballot: Ballot,
        epoch: u64,
        backlog: bool,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        self.note_ballot(ballot);
        if ballot < self.promised || ballot.proposer == self.id {
            return;
        }
        if ballot > self.promised {
            // A leadership we missed the prepare of; a majority promised
            // it (rounds are only run by elected leaders), so following it
            // is safe — same reasoning as `handle_chosen`.
            self.promised = ballot;
            self.storage.save_promised(ballot);
        }
        self.fd.observe(ballot, now);
        // Adopt the leader's load hint: under a backlog the round traffic
        // replaces per-read confirms; a single-read round lifts it.
        self.confirm_suppressed = backlog;
        out.push(Action::send(
            Addr::Replica(ballot.proposer),
            Msg::ConfirmBatch { ballot, epoch },
        ));
    }

    fn handle_catchup_req(&mut self, from: Addr, have: Instance, out: &mut Vec<Action>) {
        let Role::Leader(l) = &self.role else {
            return; // only the leader serves catch-up
        };
        let ballot = l.ballot;
        let upto = self.log.chosen_prefix();
        if upto <= have {
            return;
        }
        self.stats.catchups_served += 1;
        let msg = match self.log.chosen_range(have, upto) {
            Some(entries) => Msg::CatchUp {
                ballot,
                entries,
                snapshot: None,
                upto,
            },
            None => {
                // The log no longer reaches back to `have`. Prefer
                // streaming the retained chunked checkpoint (refcounted
                // clones; zero serialization work) over re-snapshotting
                // the whole service inline.
                if let Some(ck) = self.storage.checkpoint_chunks() {
                    if ck.upto > have {
                        let total = u32::try_from(ck.chunks.len()).unwrap_or(u32::MAX);
                        for (i, data) in ck.chunks.iter().enumerate() {
                            out.push(Action::send(
                                from,
                                Msg::CatchUpChunk {
                                    ballot,
                                    upto: ck.upto,
                                    seq: i as u32,
                                    total,
                                    dedup: if i == 0 { ck.dedup.clone() } else { Vec::new() },
                                    data: data.clone(),
                                },
                            ));
                        }
                        // Entries above the checkpoint ride a normal
                        // CatchUp (the log retains everything above it).
                        let entries = self.log.chosen_range(ck.upto, upto).unwrap_or_default();
                        out.push(Action::send(
                            from,
                            Msg::CatchUp {
                                ballot,
                                entries,
                                snapshot: None,
                                upto,
                            },
                        ));
                        return;
                    }
                }
                Msg::CatchUp {
                    ballot,
                    entries: Vec::new(),
                    snapshot: Some(self.make_snapshot()),
                    upto,
                }
            }
        };
        out.push(Action::send(from, msg));
    }

    /// Receive one chunk of a chunked snapshot transfer. Chunks are
    /// buffered per `upto`; once all `total` arrive, the reassembled
    /// snapshot installs exactly like a monolithic [`Msg::CatchUp`] one.
    #[allow(clippy::too_many_arguments)]
    fn handle_catchup_chunk(
        &mut self,
        ballot: Ballot,
        upto: Instance,
        seq: u32,
        total: u32,
        dedup: Vec<DedupEntry>,
        data: bytes::Bytes,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        /// Defensive bound on the reassembly buffer (chunk slots); a
        /// hostile or corrupt `total` must not drive a huge allocation.
        const MAX_CHUNKS: u32 = 1 << 16;
        self.note_ballot(ballot);
        if ballot < self.promised {
            return;
        }
        self.fd.observe(ballot, now);
        if total == 0 || total > MAX_CHUNKS || seq >= total {
            return;
        }
        if upto <= self.log.chosen_prefix() {
            // Already caught up past this snapshot; drop the transfer.
            self.catchup_buf = None;
            return;
        }
        let stale = !matches!(
            &self.catchup_buf,
            Some(b) if b.upto == upto && b.chunks.len() == total as usize
        );
        if stale {
            self.catchup_buf = Some(CatchUpBuf {
                upto,
                dedup: Vec::new(),
                chunks: vec![None; total as usize],
            });
        }
        let Some(buf) = self.catchup_buf.as_mut() else {
            return;
        };
        if seq == 0 {
            buf.dedup = dedup;
        }
        buf.chunks[seq as usize] = Some(data);
        if !buf.chunks.iter().all(Option::is_some) {
            return;
        }
        let Some(buf) = self.catchup_buf.take() else {
            return;
        };
        let len: usize = buf.chunks.iter().flatten().map(|c| c.len()).sum();
        let mut app = bytes::BytesMut::with_capacity(len);
        for c in buf.chunks.iter().flatten() {
            app.extend_from_slice(c);
        }
        let snap = SnapshotBlob {
            upto: buf.upto,
            app: app.freeze(),
            dedup: buf.dedup,
        };
        self.catchup_requested_at = None;
        if snap.upto > self.log.chosen_prefix() {
            self.install_snapshot(&snap);
        }
        self.drain_apply(now, out);
    }

    fn handle_catchup(
        &mut self,
        ballot: Ballot,
        entries: Vec<(Instance, Decree)>,
        snapshot: Option<SnapshotBlob>,
        _upto: Instance,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        self.note_ballot(ballot);
        if ballot < self.promised {
            return;
        }
        self.fd.observe(ballot, now);
        self.catchup_requested_at = None;

        if let Some(snap) = snapshot {
            if snap.upto > self.log.chosen_prefix() {
                self.install_snapshot(&snap);
            }
        }
        for (i, d) in entries {
            if i > self.log.chosen_prefix() && !self.log.is_known_chosen(i) {
                self.storage.save_accepted(i, ballot, &d);
                self.log.record_accept(i, ballot, d);
                self.log.mark_chosen(i);
            }
        }
        self.drain_apply(now, out);
    }

    // ------------------------------------------------------------------
    // Learner: the apply pipeline
    // ------------------------------------------------------------------

    /// Apply every contiguously-chosen decree to the service, advancing the
    /// prefix, persisting it, replying to clients (leader only) and taking
    /// checkpoints.
    pub(crate) fn drain_apply(&mut self, now: Time, out: &mut Vec<Action>) {
        while let Some((i, d)) = self.log.next_applicable() {
            let decree = d.clone();
            self.apply_to_service(i, &decree);
            self.log.advance_applied(i);
            self.storage.save_chosen_prefix(i);

            // Only the leader replies (and a re-elected leader re-replies
            // for recovered decrees whose clients may still be waiting).
            if matches!(self.role, Role::Leader(_)) {
                for entry in &decree.entries {
                    if let Some(rid) = entry.cmd.request_id() {
                        out.push(Action::send(
                            Addr::Client(rid.client),
                            Msg::Reply(Reply {
                                id: rid,
                                leader: self.id,
                                body: entry.reply.clone(),
                            }),
                        ));
                    }
                }
            }
            self.maybe_checkpoint(i);
        }
        // Make incremental-checkpoint progress on the apply path too: one
        // chunk per drain keeps the per-cycle cost O(chunk), not O(state).
        self.pump_checkpoint(1);
        // Leader: an advance may unblock deferred reads and queued writes.
        if matches!(self.role, Role::Leader(_)) {
            self.leader_after_advance(now, out);
        }
    }

    /// Apply one chosen decree (all of its entries, in order) to the
    /// service and the dedup table.
    fn apply_to_service(&mut self, i: Instance, decree: &Decree) {
        self.stats.applied += 1;
        let skip_app = self.self_executed == Some(i);
        if skip_app {
            self.self_executed = None;
            self.pre_exec = None;
            if self.tentative {
                self.tentative = false;
                self.app.tentative_commit();
            }
        }
        for entry in &decree.entries {
            match &entry.cmd {
                Command::Noop => {}
                Command::Req(req) => {
                    let duplicate = self
                        .dedup
                        .get(&req.id.client)
                        .is_some_and(|(s, _)| *s >= req.id.seq);
                    if !duplicate {
                        if !skip_app {
                            match self.cfg.value_mode {
                                ValueMode::ReqState => self.app.apply(req, &entry.update),
                                ValueMode::ReqOnly => {
                                    // Classic SMR: every replica executes.
                                    // Only sound for deterministic services.
                                    let mut ctx = ExecCtx::new(Time::ZERO, &mut self.rng);
                                    let _ = self.app.execute(req, &mut ctx);
                                }
                            }
                        }
                        self.dedup
                            .insert(req.id.client, (req.id.seq, entry.reply.clone()));
                    }
                }
                Command::TxnCommit { id, txn, ops } => {
                    let duplicate = self
                        .dedup
                        .get(&id.client)
                        .is_some_and(|(s, _)| *s >= id.seq);
                    if !duplicate {
                        if !skip_app {
                            self.app.apply_txn_commit(*txn, ops, &entry.update);
                        }
                        self.dedup.insert(id.client, (id.seq, entry.reply.clone()));
                    }
                }
            }
        }
    }

    fn maybe_checkpoint(&mut self, prefix: Instance) {
        if self.cfg.checkpoint_every == 0 {
            return;
        }
        if self.ckpt.is_some() {
            return; // one incremental checkpoint at a time
        }
        if prefix.0 - self.last_checkpoint.0 < self.cfg.checkpoint_every {
            return;
        }
        let chunk_bytes = self.cfg.checkpoint_chunk_bytes;
        if chunk_bytes > 0
            && self.storage.supports_chunked_checkpoint()
            // Never freeze while a tentative leader-side execution is
            // outstanding: the frozen image must be committed state only.
            && self.self_executed.is_none()
        {
            let total = self.app.snapshot_begin(chunk_bytes);
            let mut dedup: Vec<DedupEntry> = self
                .dedup
                .iter()
                .map(|(c, (s, r))| DedupEntry {
                    client: *c,
                    seq: *s,
                    reply: r.clone(),
                })
                .collect();
            dedup.sort_unstable_by_key(|e| e.client);
            self.storage.checkpoint_begin(prefix, &dedup, total);
            self.ckpt = Some(CkptProgress {
                upto: prefix,
                total,
                next: 0,
                bytes: 0,
                started: self.clock,
            });
            // An app that did not override chunking reports one chunk and
            // does not freeze — its single chunk must be emitted before
            // any further decree applies, so drain it right here. Real
            // chunked apps stream across drive cycles instead.
            if total <= 1 {
                self.pump_checkpoint(usize::MAX);
            }
            return;
        }
        // Legacy stop-the-world checkpoint.
        let snap = self.make_snapshot();
        let bytes = snap.app.len() as u64;
        self.storage.save_checkpoint(&snap);
        self.storage.truncate_upto(snap.upto);
        self.log.truncate_upto(snap.upto);
        self.last_checkpoint = snap.upto;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += bytes;
        self.stats.checkpoint_chunks += 1;
        self.stats.last_checkpoint_bytes = bytes;
        self.stats.last_checkpoint_chunks = 1;
        self.stats.last_checkpoint_dur = Dur::ZERO;
    }

    /// Emit up to `budget` chunks of the in-flight incremental checkpoint,
    /// completing it (commit + WAL compaction) when the last chunk lands.
    /// Returns whether a checkpoint is still in flight. Drive loops call
    /// this once per cycle; it is a no-op when nothing is in progress.
    pub fn pump_checkpoint(&mut self, budget: usize) -> bool {
        let Some(mut ck) = self.ckpt.take() else {
            return false;
        };
        let mut emitted = 0;
        while ck.next < ck.total && emitted < budget {
            let data = self.app.snapshot_chunk(ck.next);
            ck.bytes += data.len() as u64;
            self.storage.checkpoint_chunk(ck.next, data);
            ck.next += 1;
            emitted += 1;
        }
        if ck.next < ck.total {
            self.ckpt = Some(ck);
            return true;
        }
        self.app.snapshot_end();
        self.storage.checkpoint_commit();
        // Bounded disk: WAL compaction is keyed to *completed* chunked
        // checkpoints — the log shrinks only once the replacement state
        // is fully durable.
        self.storage.truncate_upto(ck.upto);
        self.log.truncate_upto(ck.upto);
        self.last_checkpoint = ck.upto;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += ck.bytes;
        self.stats.checkpoint_chunks += ck.total as u64;
        self.stats.last_checkpoint_bytes = ck.bytes;
        self.stats.last_checkpoint_chunks = ck.total as u64;
        self.stats.last_checkpoint_dur = self.clock.since(ck.started);
        false
    }

    pub(crate) fn make_snapshot(&self) -> SnapshotBlob {
        let mut dedup: Vec<DedupEntry> = self
            .dedup
            .iter()
            .map(|(c, (s, r))| DedupEntry {
                client: *c,
                seq: *s,
                reply: r.clone(),
            })
            .collect();
        // `dedup` is a HashMap, so iteration order is arbitrary per
        // process; snapshots must serialize identically on every replica or
        // state digests (and seeded replays) diverge on equal states.
        dedup.sort_unstable_by_key(|e| e.client);
        SnapshotBlob {
            upto: self.log.chosen_prefix(),
            app: self.app.snapshot(),
            dedup,
        }
    }

    pub(crate) fn install_snapshot(&mut self, snap: &SnapshotBlob) {
        debug_assert!(snap.upto >= self.log.chosen_prefix());
        // The incoming state obliterates local service state: abort any
        // in-flight incremental checkpoint (its frozen image is now moot)
        // and unwind a tentative execution overlay first so `restore` sees
        // a quiesced app.
        if self.ckpt.take().is_some() {
            self.app.snapshot_end();
            self.storage.checkpoint_abort();
        }
        if self.tentative {
            self.tentative = false;
            self.app.tentative_rollback();
        }
        self.pre_exec = None;
        self.app.restore(&snap.app);
        self.dedup.clear();
        for e in &snap.dedup {
            self.dedup.insert(e.client, (e.seq, e.reply.clone()));
        }
        self.log.truncate_upto(snap.upto);
        self.log.force_prefix(snap.upto);
        self.storage.save_checkpoint(snap);
        self.storage.truncate_upto(snap.upto);
        self.storage.save_chosen_prefix(snap.upto);
        self.last_checkpoint = snap.upto;
        self.self_executed = None;
    }

    // ------------------------------------------------------------------
    // Step-down
    // ------------------------------------------------------------------

    /// Yield to a higher ballot: abort leader/candidate state, roll back
    /// any tentative execution, and return to following.
    pub(crate) fn step_down(&mut self, higher: Ballot, now: Time, out: &mut Vec<Action>) {
        self.note_ballot(higher);
        match std::mem::replace(&mut self.role, Role::Follower) {
            Role::Leader(l) => {
                self.stats.step_downs += 1;
                // T-Paxos sessions die with the leadership (§3.6): staged
                // effects are discarded; clients learn via LeaderSwitch
                // aborts when they try to commit at the new leader.
                // Abort in key order — `txns` is a HashMap and the service
                // may observe the abort sequence.
                let mut dying: Vec<(ClientId, TxnId)> = l.txns.into_keys().collect();
                dying.sort_unstable();
                for (_, txn) in dying {
                    self.app.txn_abort(txn);
                    self.stats.txns_aborted += 1;
                }
                // Roll back a tentative execution that never committed.
                let outstanding = self.self_executed.take().is_some();
                if self.tentative {
                    self.tentative = false;
                    if outstanding {
                        self.app.tentative_rollback();
                    } else {
                        self.app.tentative_commit();
                    }
                } else if let Some(snap) = self.pre_exec.take() {
                    if outstanding {
                        self.app.restore(&snap);
                    }
                }
                self.pre_exec = None;
                out.push(Action::CancelTimer {
                    kind: TimerKind::Heartbeat,
                });
                out.push(Action::CancelTimer {
                    kind: TimerKind::Retransmit,
                });
            }
            Role::Candidate(_) => {
                self.stats.step_downs += 1;
                out.push(Action::CancelTimer {
                    kind: TimerKind::Election,
                });
            }
            Role::Follower => {}
        }
        self.fd.reset(now);
        self.pacer.settle();
    }
}

#[cfg(test)]
mod tests;
