//! Unit tests for the replica roles, driven by a zero-latency in-memory
//! shuttle (failure-free runs need no timers; tests fire timers manually
//! where a scenario depends on them).

use super::*;
use crate::client::ClientCore;
use crate::config::{ReadMode, TxnMode};
use crate::msg::Msg;
use crate::request::{AbortReason, RequestKind};
use crate::service::NoopApp;
use crate::storage::MemStorage;
use crate::types::{Addr, ClientId, Dur, ProcessId, Time, TxnId};
use bytes::Bytes;

/// Zero-latency network: delivers every queued message immediately, in
/// FIFO order. Timer actions are recorded but fired only on demand.
struct Shuttle {
    replicas: Vec<Option<Replica>>,
    queue: std::collections::VecDeque<(Addr, Addr, Msg)>, // (from, to, msg)
    client_inbox: Vec<(ClientId, Msg)>,
    now: Time,
}

impl Shuttle {
    fn new(n: usize, cfg: Config) -> Shuttle {
        let mut s = Shuttle {
            replicas: (0..n)
                .map(|i| {
                    Some(Replica::new(
                        ProcessId(i as u32),
                        cfg.clone(),
                        Box::new(NoopApp::new()),
                        Box::new(MemStorage::new()),
                        7 + i as u64,
                        Time::ZERO,
                    ))
                })
                .collect(),
            queue: Default::default(),
            client_inbox: Vec::new(),
            now: Time::ZERO,
        };
        for i in 0..n {
            let actions = s.replicas[i].as_mut().unwrap().on_start(Time::ZERO);
            s.enqueue(Addr::Replica(ProcessId(i as u32)), actions);
        }
        s.run();
        s
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    fn enqueue(&mut self, from: Addr, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => self.queue.push_back((from, to, msg)),
                Action::ToAllReplicas { msg } => {
                    for i in 0..self.n() {
                        let to = Addr::Replica(ProcessId(i as u32));
                        if to != from {
                            self.queue.push_back((from, to, msg.clone()));
                        }
                    }
                }
                Action::SetTimer { .. } | Action::CancelTimer { .. } => {}
            }
        }
    }

    /// Deliver until quiescent.
    fn run(&mut self) {
        let mut hops = 0;
        while let Some((from, to, msg)) = self.queue.pop_front() {
            hops += 1;
            assert!(hops < 100_000, "message storm");
            match to {
                Addr::Replica(p) => {
                    if let Some(r) = self.replicas[p.0 as usize].as_mut() {
                        let actions = r.on_message(from, msg, self.now);
                        self.enqueue(to, actions);
                    }
                }
                Addr::Client(c) => self.client_inbox.push((c, msg)),
            }
        }
    }

    fn fire(&mut self, p: u32, kind: TimerKind) {
        if let Some(r) = self.replicas[p as usize].as_mut() {
            let actions = r.on_timer(kind, self.now);
            self.enqueue(Addr::Replica(ProcessId(p)), actions);
        }
        self.run();
    }

    fn replica(&self, p: u32) -> &Replica {
        self.replicas[p as usize].as_ref().unwrap()
    }

    fn crash(&mut self, p: u32) -> Box<dyn crate::storage::Storage> {
        let r = self.replicas[p as usize].take().unwrap();
        r.storage
    }

    fn leader(&self) -> Option<u32> {
        (0..self.n() as u32).find(|p| {
            self.replicas[*p as usize]
                .as_ref()
                .is_some_and(|r| r.is_leader())
        })
    }

    fn submit(&mut self, client: &mut ClientCore, kind: RequestKind) -> crate::client::CompletedOp {
        let actions = client.submit_op(kind, Bytes::new(), self.now);
        self.drive_client(client, actions)
    }

    fn drive_client(
        &mut self,
        client: &mut ClientCore,
        actions: Vec<Action>,
    ) -> crate::client::CompletedOp {
        let from = Addr::Client(client.id());
        self.enqueue(from, actions);
        self.run();
        let mut result = None;
        let inbox = std::mem::take(&mut self.client_inbox);
        for (c, msg) in inbox {
            if c == client.id() {
                let (done, acts) = client.on_message(msg, self.now);
                self.enqueue(from, acts);
                if let Some(d) = done {
                    result = Some(d);
                }
            }
        }
        self.run();
        result.expect("request must complete in a failure-free run")
    }

    fn assert_replica_states_converged(&mut self) {
        // Let stragglers catch up via a heartbeat round first.
        if let Some(lead) = self.leader() {
            self.fire(lead, TimerKind::Heartbeat);
        }
        let snaps: Vec<_> = self
            .replicas
            .iter()
            .flatten()
            .map(|r| (r.chosen_prefix(), r.service_snapshot()))
            .collect();
        for w in snaps.windows(2) {
            assert_eq!(w[0], w[1], "replica states diverged");
        }
    }
}

fn cluster_cfg(n: usize) -> Config {
    Config::cluster(n)
}

#[test]
fn bootstrap_elects_the_configured_leader() {
    let s = Shuttle::new(3, cluster_cfg(3));
    assert_eq!(s.leader(), Some(0));
    assert!(s.replica(1).promised() == s.replica(0).promised());
    assert_eq!(s.replica(0).promised().proposer, ProcessId(0));
}

#[test]
fn write_commits_on_all_replicas() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let done = s.submit(&mut c, RequestKind::Write);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(done.leader, ProcessId(0));
    s.assert_replica_states_converged();
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));
    // All three no-op services counted the write.
    for p in 0..3 {
        let snap = s.replica(p).service_snapshot();
        assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 1);
    }
}

#[test]
fn xpaxos_read_completes_without_consensus_instance() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    let before = s.replica(0).chosen_prefix();
    let done = s.submit(&mut c, RequestKind::Read);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    // Reads consume no instance.
    assert_eq!(s.replica(0).chosen_prefix(), before);
    assert_eq!(s.replica(0).stats.xpaxos_reads, 1);
}

#[test]
fn consensus_read_mode_runs_full_instance() {
    let cfg = cluster_cfg(3).with_read_mode(ReadMode::Consensus);
    let mut s = Shuttle::new(3, cfg);
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let done = s.submit(&mut c, RequestKind::Read);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));
    assert_eq!(s.replica(0).stats.consensus_reads, 1);
}

#[test]
fn original_requests_bypass_coordination() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let done = s.submit(&mut c, RequestKind::Original);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).chosen_prefix(), Instance::ZERO);
    assert_eq!(s.replica(0).stats.originals, 1);
}

#[test]
fn duplicate_request_is_answered_from_dedup() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let done = s.submit(&mut c, RequestKind::Write);
    let req = done.req.clone();
    // Replay the identical request straight at the leader.
    s.enqueue(
        Addr::Client(c.id()),
        vec![Action::send(Addr::Replica(ProcessId(0)), Msg::Request(req))],
    );
    s.run();
    // Exactly one more reply arrives, no new instance is consumed.
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));
    let replies = s
        .client_inbox
        .iter()
        .filter(|(cid, _)| *cid == c.id())
        .count();
    assert_eq!(replies, 1);
}

#[test]
fn many_writes_from_many_clients_stay_consistent() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut clients: Vec<ClientCore> = (0..4)
        .map(|i| ClientCore::new(ClientId(i), 3, Dur::from_millis(100)))
        .collect();
    for round in 0..5 {
        for c in clients.iter_mut() {
            let done = s.submit(c, RequestKind::Write);
            assert!(matches!(done.body, ReplyBody::Ok(_)), "round {round}");
        }
    }
    assert_eq!(s.replica(0).chosen_prefix(), Instance(20));
    s.assert_replica_states_converged();
}

#[test]
fn leader_crash_failover_and_continued_service() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    s.crash(0);
    // r1 suspects and takes over.
    s.now = Time(Dur::from_secs(10).0);
    s.fire(1, TimerKind::LeaderCheck);
    assert_eq!(s.leader(), Some(1));
    // The new leader must know the first write.
    assert_eq!(s.replica(1).chosen_prefix(), Instance(1));
    // And keep serving.
    let done = s.submit(&mut c, RequestKind::Write);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(done.leader, ProcessId(1));
    assert_eq!(s.replica(1).chosen_prefix(), Instance(2));
}

#[test]
fn deposed_leader_rolls_back_tentative_execution() {
    // Drive r0 to execute a write tentatively but never commit it, by
    // dropping its outbound accept.
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);

    // Detach r0: feed it a request directly and drop its outbound traffic.
    let req = crate::request::Request::new(
        crate::request::RequestId::new(ClientId(9), crate::types::Seq(1)),
        RequestKind::Write,
        Bytes::new(),
    );
    let r0 = s.replicas[0].as_mut().unwrap();
    let _dropped = r0.on_message(Addr::Client(ClientId(9)), Msg::Request(req), s.now);
    // r0 executed tentatively: its service saw the write...
    let snap = s.replica(0).service_snapshot();
    assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 2);

    // ...and a higher-ballot prepare, delivered synchronously, forces the
    // rollback at the moment of step-down.
    let higher = crate::ballot::Ballot::new(99, ProcessId(1));
    let r0 = s.replicas[0].as_mut().unwrap();
    let _promise = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::Prepare {
            ballot: higher,
            chosen_prefix: Instance(1),
            known_above: vec![],
        },
        s.now,
    );
    assert!(!s.replica(0).is_leader());
    let snap = s.replica(0).service_snapshot();
    assert_eq!(
        u64::from_le_bytes(snap[..8].try_into().unwrap()),
        1,
        "tentative write must be rolled back on step-down"
    );
}

#[test]
fn tentative_proposal_resurfaces_through_new_leader() {
    // A deposed leader's accepted-but-uncommitted decree is learned via
    // promises and legitimately completed by the new leader.
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);

    let req = crate::request::Request::new(
        crate::request::RequestId::new(ClientId(9), crate::types::Seq(1)),
        RequestKind::Write,
        Bytes::new(),
    );
    let r0 = s.replicas[0].as_mut().unwrap();
    let _dropped = r0.on_message(Addr::Client(ClientId(9)), Msg::Request(req), s.now);

    // r1 takes over; its prepare majority includes r0, so the tentative
    // decree is re-proposed under the new ballot and commits everywhere.
    s.now = Time(Dur::from_secs(10).0);
    s.fire(1, TimerKind::LeaderCheck);
    assert_eq!(s.leader(), Some(1));
    assert_eq!(s.replica(1).chosen_prefix(), Instance(2));
    s.assert_replica_states_converged();
    for p in 0..3 {
        let snap = s.replica(p).service_snapshot();
        assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 2);
    }
    // The waiting client was answered by the new leader.
    assert!(s
        .client_inbox
        .iter()
        .any(|(cid, m)| *cid == ClientId(9)
            && matches!(m, Msg::Reply(r) if r.leader == ProcessId(1))));
}

#[test]
fn tpaxos_ops_reply_immediately_commit_coordinates() {
    let cfg = cluster_cfg(3).with_txn_mode(TxnMode::TPaxos);
    let mut s = Shuttle::new(3, cfg);
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let txn = TxnId(1);

    for i in 0..3u64 {
        let id = c.next_request_id();
        let req = crate::request::Request::txn_op(id, RequestKind::Write, txn, Bytes::new());
        let actions = c.submit(req, s.now);
        let done = s.drive_client(&mut c, actions);
        assert!(matches!(done.body, ReplyBody::Ok(_)), "op {i}");
        // No consensus yet.
        assert_eq!(s.replica(0).chosen_prefix(), Instance::ZERO);
    }
    let id = c.next_request_id();
    let commit = crate::request::Request::txn_commit(id, txn, 3);
    let actions = c.submit(commit, s.now);
    let done = s.drive_client(&mut c, actions);
    assert_eq!(done.body, ReplyBody::TxnCommitted { txn });
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));
    s.assert_replica_states_converged();
    assert_eq!(s.replica(0).stats.txns_committed, 1);
}

#[test]
fn tpaxos_commit_after_leader_switch_aborts() {
    let cfg = cluster_cfg(3).with_txn_mode(TxnMode::TPaxos);
    let mut s = Shuttle::new(3, cfg);
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let txn = TxnId(1);
    // Two ops land at r0.
    for _ in 0..2 {
        let id = c.next_request_id();
        let req = crate::request::Request::txn_op(id, RequestKind::Write, txn, Bytes::new());
        let actions = c.submit(req, s.now);
        let done = s.drive_client(&mut c, actions);
        assert!(matches!(done.body, ReplyBody::Ok(_)));
    }
    // Leader dies; r1 takes over with no session for the txn.
    s.crash(0);
    s.now = Time(Dur::from_secs(10).0);
    s.fire(1, TimerKind::LeaderCheck);
    assert_eq!(s.leader(), Some(1));

    let id = c.next_request_id();
    let commit = crate::request::Request::txn_commit(id, txn, 2);
    let actions = c.submit(commit, s.now);
    let done = s.drive_client(&mut c, actions);
    assert_eq!(
        done.body,
        ReplyBody::TxnAborted {
            txn,
            reason: AbortReason::LeaderSwitch
        }
    );
    // Nothing of the transaction is visible anywhere.
    s.assert_replica_states_converged();
    for p in 1..3 {
        let snap = s.replica(p).service_snapshot();
        assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 0);
    }
}

#[test]
fn tpaxos_client_abort_discards_staged_ops() {
    let cfg = cluster_cfg(3).with_txn_mode(TxnMode::TPaxos);
    let mut s = Shuttle::new(3, cfg);
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let txn = TxnId(1);
    let id = c.next_request_id();
    let req = crate::request::Request::txn_op(id, RequestKind::Write, txn, Bytes::new());
    let actions = c.submit(req, s.now);
    s.drive_client(&mut c, actions);

    let id = c.next_request_id();
    let abort = crate::request::Request::txn_abort(id, txn);
    let actions = c.submit(abort, s.now);
    let done = s.drive_client(&mut c, actions);
    assert_eq!(
        done.body,
        ReplyBody::TxnAborted {
            txn,
            reason: AbortReason::ClientAbort
        }
    );
    assert_eq!(s.replica(0).chosen_prefix(), Instance::ZERO);
    s.assert_replica_states_converged();
}

#[test]
fn crashed_replica_recovers_from_storage() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    for _ in 0..3 {
        s.submit(&mut c, RequestKind::Write);
    }
    // r2 crashes and recovers from its own storage.
    let storage = s.crash(2);
    let recovered = Replica::recover(
        ProcessId(2),
        cluster_cfg(3),
        Box::new(NoopApp::new()),
        storage,
        99,
        s.now,
    );
    assert_eq!(recovered.chosen_prefix(), Instance(3));
    let snap = recovered.service_snapshot();
    assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 3);
    s.replicas[2] = Some(recovered);
    // It keeps participating.
    let done = s.submit(&mut c, RequestKind::Write);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    s.assert_replica_states_converged();
}

#[test]
fn checkpointing_truncates_the_log() {
    let cfg = cluster_cfg(3).with_checkpoint_every(4);
    let mut s = Shuttle::new(3, cfg);
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    for _ in 0..10 {
        s.submit(&mut c, RequestKind::Write);
    }
    assert!(s.replica(0).stats.checkpoints >= 2);
    assert!(
        s.replica(0).log_len() < 10,
        "log must shrink after checkpoints: {}",
        s.replica(0).log_len()
    );
    s.assert_replica_states_converged();
}

#[test]
fn lagging_replica_catches_up_via_heartbeat() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);

    // r2 crashes, misses traffic, then a *fresh* r2 rejoins (empty state).
    s.crash(2);
    for _ in 0..3 {
        s.submit(&mut c, RequestKind::Write);
    }
    s.replicas[2] = Some(Replica::new(
        ProcessId(2),
        cluster_cfg(3),
        Box::new(NoopApp::new()),
        Box::new(MemStorage::new()),
        123,
        s.now,
    ));
    let actions = s.replicas[2].as_mut().unwrap().on_start(s.now);
    s.enqueue(Addr::Replica(ProcessId(2)), actions);
    s.run();
    // Heartbeat announces the chosen prefix; r2 requests catch-up.
    s.fire(0, TimerKind::Heartbeat);
    assert_eq!(s.replica(2).chosen_prefix(), Instance(4));
    s.assert_replica_states_converged();
}

#[test]
fn n5_tolerates_two_crashes() {
    let mut s = Shuttle::new(5, cluster_cfg(5));
    let mut c = ClientCore::new(ClientId(1), 5, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    s.crash(3);
    s.crash(4);
    let done = s.submit(&mut c, RequestKind::Write);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).chosen_prefix(), Instance(2));
}

#[test]
fn lagging_candidate_adopts_promise_snapshot() {
    // §3.3: "If the replica knows any instance greater than 90, it sends
    // the leader not only all the requests ... but also the state of the
    // latest proposal it knows." A *behind* candidate must adopt the most
    // advanced snapshot from its promises before leading.
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);

    // r2 crashes; the group commits more writes without it.
    let storage = s.crash(2);
    for _ in 0..4 {
        s.submit(&mut c, RequestKind::Write);
    }
    // r2 recovers with only instance 1 applied...
    let recovered = Replica::recover(
        ProcessId(2),
        cluster_cfg(3),
        Box::new(NoopApp::new()),
        storage,
        7,
        s.now,
    );
    assert_eq!(recovered.chosen_prefix(), Instance(1), "r2 is behind");
    s.replicas[2] = Some(recovered);

    // ...the leader dies before any heartbeat can catch r2 up, and r2
    // campaigns first (we control the timers).
    s.crash(0);
    s.now = Time(Dur::from_secs(10).0);
    s.fire(2, TimerKind::LeaderCheck);

    assert_eq!(s.leader(), Some(2), "the lagging replica won");
    // The promise from r1 carried a snapshot at instance 5; r2 adopted it.
    assert_eq!(s.replica(2).chosen_prefix(), Instance(5));
    let snap = s.replica(2).service_snapshot();
    assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 5);

    // And it keeps serving correctly.
    let done = s.submit(&mut c, RequestKind::Write);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(2).chosen_prefix(), Instance(6));
}

#[test]
fn xpaxos_read_defers_behind_tentative_write() {
    // §3.4's consistency requirement: "the value that the service returns
    // as a response to a read must reflect the latest update". A read
    // arriving while a write is tentatively executed but uncommitted must
    // wait for the commit — and then observe it.
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write); // instance 1 committed

    // Feed the leader a write directly and withhold its accept traffic:
    // the write is now tentative (inflight, uncommitted).
    let w = crate::request::Request::new(
        crate::request::RequestId::new(ClientId(8), crate::types::Seq(1)),
        RequestKind::Write,
        Bytes::new(),
    );
    let r0 = s.replicas[0].as_mut().unwrap();
    let withheld = r0.on_message(Addr::Client(ClientId(8)), Msg::Request(w), s.now);
    assert!(
        withheld.iter().any(|a| matches!(
            a,
            Action::ToAllReplicas {
                msg: Msg::Accept { .. }
            }
        )),
        "the write was proposed"
    );

    // A read arrives; the leader must NOT reply yet (no execution against
    // tentative state), even with majority confirms.
    let read = crate::request::Request::new(
        crate::request::RequestId::new(ClientId(9), crate::types::Seq(1)),
        RequestKind::Read,
        Bytes::new(),
    );
    let r0 = s.replicas[0].as_mut().unwrap();
    let ballot = r0.promised();
    let a1 = r0.on_message(Addr::Client(ClientId(9)), Msg::Request(read.clone()), s.now);
    let a2 = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::Confirm {
            ballot,
            read: read.id,
        },
        s.now,
    );
    let a3 = r0.on_message(
        Addr::Replica(ProcessId(2)),
        Msg::Confirm {
            ballot,
            read: read.id,
        },
        s.now,
    );
    for a in a1.iter().chain(&a2).chain(&a3) {
        assert!(
            !matches!(
                a,
                Action::Send {
                    to: Addr::Client(_),
                    msg: Msg::Reply(_)
                }
            ),
            "read must not be answered before the tentative write resolves"
        );
    }

    // Now let the write commit: deliver the accepted acks.
    let instance = Instance(2);
    let r0 = s.replicas[0].as_mut().unwrap();
    let mut actions = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::Accepted {
            ballot,
            instances: vec![instance],
        },
        s.now,
    );
    actions.extend(r0.on_message(
        Addr::Replica(ProcessId(2)),
        Msg::Accepted {
            ballot,
            instances: vec![instance],
        },
        s.now,
    ));
    // The commit unblocks the deferred read, which already has its
    // majority of confirms — the reply must reflect the committed write.
    let reply = actions.iter().find_map(|a| match a {
        Action::Send {
            to: Addr::Client(ClientId(9)),
            msg: Msg::Reply(r),
        } => Some(r.clone()),
        _ => None,
    });
    let reply = reply.expect("deferred read answered on commit");
    let payload = reply.body.payload().expect("ok reply");
    assert_eq!(
        u64::from_le_bytes(payload[..8].try_into().unwrap()),
        2,
        "the read observes both committed writes"
    );
}

#[test]
fn dueling_candidates_resolve_to_one_leader() {
    // Two replicas suspect the (never-started) leader at the same moment
    // and campaign concurrently; ballot ordering + stability must leave
    // exactly one leader.
    let cfg = cluster_cfg(3).with_bootstrap_leader(None);
    let mut s = Shuttle::new(3, cfg);
    assert_eq!(s.leader(), None, "nobody leads initially");

    s.now = Time(Dur::from_secs(10).0);
    // Collect both candidacies BEFORE delivering anything: a real duel.
    let a1 = s.replicas[1]
        .as_mut()
        .unwrap()
        .on_timer(TimerKind::LeaderCheck, s.now);
    let a2 = s.replicas[2]
        .as_mut()
        .unwrap()
        .on_timer(TimerKind::LeaderCheck, s.now);
    s.enqueue(Addr::Replica(ProcessId(1)), a1);
    s.enqueue(Addr::Replica(ProcessId(2)), a2);
    s.run();

    let leaders: Vec<u32> = (0..3)
        .filter(|p| s.replicas[*p as usize].as_ref().unwrap().is_leader())
        .collect();
    assert_eq!(leaders.len(), 1, "exactly one leader after the duel");
    // Same-round duels resolve toward the higher proposer id.
    assert_eq!(leaders[0], 2);

    // The group serves requests normally afterwards.
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let done = s.submit(&mut c, RequestKind::Write);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    s.assert_replica_states_converged();
}

#[test]
fn confirm_outracing_read_request_is_buffered() {
    // A follower's Confirm can reach the leader before the client's own
    // request (latency variance); the vote must not be lost.
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let read = crate::request::Request::new(
        crate::request::RequestId::new(ClientId(5), crate::types::Seq(1)),
        RequestKind::Read,
        Bytes::new(),
    );
    let r0 = s.replicas[0].as_mut().unwrap();
    let ballot = r0.promised();
    // Confirms arrive first...
    let a = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::Confirm {
            ballot,
            read: read.id,
        },
        s.now,
    );
    assert!(a.is_empty(), "nothing to do yet");
    // ...then the request: it must complete immediately using the
    // buffered vote (majority = self + r1).
    let actions = r0.on_message(Addr::Client(ClientId(5)), Msg::Request(read.clone()), s.now);
    assert!(
        actions.iter().any(|act| matches!(
            act,
            Action::Send {
                to: Addr::Client(ClientId(5)),
                msg: Msg::Reply(_)
            }
        )),
        "buffered early confirm must complete the read"
    );
}

#[test]
fn stale_leader_cannot_answer_reads_after_deposition() {
    // §3.4: "only the leader with the highest accepted ballot number can
    // receive confirms from a majority and respond to read requests."
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);

    // Depose r0 via a direct higher-ballot prepare (it answers with a
    // promise, which we drop — r0 now believes in ballot b99).
    let higher = crate::ballot::Ballot::new(99, ProcessId(1));
    let r0 = s.replicas[0].as_mut().unwrap();
    let _ = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::Prepare {
            ballot: higher,
            chosen_prefix: Instance(1),
            known_above: vec![],
        },
        s.now,
    );
    assert!(!s.replica(0).is_leader());

    // A client read reaching the deposed r0 produces no reply and no
    // stale confirms counted toward itself.
    let read = crate::request::Request::new(
        crate::request::RequestId::new(ClientId(9), crate::types::Seq(1)),
        RequestKind::Read,
        Bytes::new(),
    );
    let r0 = s.replicas[0].as_mut().unwrap();
    let actions = r0.on_message(Addr::Client(ClientId(9)), Msg::Request(read.clone()), s.now);
    for a in &actions {
        assert!(
            !matches!(
                a,
                Action::Send {
                    msg: Msg::Reply(_),
                    ..
                }
            ),
            "a deposed leader must not answer reads"
        );
    }
    // As a follower it confirms toward the new leadership instead.
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send { to: Addr::Replica(ProcessId(1)), msg: Msg::Confirm { ballot, .. } }
            if *ballot == higher
    )));
}

#[test]
fn lease_read_is_answered_locally() {
    let cfg = cluster_cfg(3).with_read_mode(ReadMode::Lease);
    let mut s = Shuttle::new(3, cfg);
    // The bootstrap heartbeat was acked during Shuttle::new's run, so the
    // leader holds a lease anchored at t=0.
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    let done = s.submit(&mut c, RequestKind::Read);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).stats.lease_reads, 1, "served under the lease");
    assert_eq!(s.replica(0).stats.xpaxos_reads, 0);
    assert_eq!(s.replica(0).stats.consensus_reads, 0);
    // No extra consensus instance for the read.
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));
}

#[test]
fn expired_lease_falls_back_to_consensus_reads() {
    let cfg = cluster_cfg(3).with_read_mode(ReadMode::Lease);
    let mut s = Shuttle::new(3, cfg);
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    // Let the lease (25 ms) lapse without any further heartbeats.
    s.now = Time(Dur::from_secs(10).0);
    let done = s.submit(&mut c, RequestKind::Read);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).stats.lease_reads, 0);
    assert_eq!(
        s.replica(0).stats.consensus_reads,
        1,
        "leaseless reads take the safe consensus path"
    );
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));

    // A fresh heartbeat round re-arms the lease; reads go local again.
    s.fire(0, TimerKind::Heartbeat);
    let done = s.submit(&mut c, RequestKind::Read);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).stats.lease_reads, 1);
}

#[test]
fn lease_mode_followers_do_not_confirm_reads() {
    let cfg = cluster_cfg(3).with_read_mode(ReadMode::Lease);
    let mut s = Shuttle::new(3, cfg);
    let read = crate::request::Request::new(
        crate::request::RequestId::new(ClientId(5), crate::types::Seq(1)),
        RequestKind::Read,
        Bytes::new(),
    );
    let r1 = s.replicas[1].as_mut().unwrap();
    let actions = r1.on_message(Addr::Client(ClientId(5)), Msg::Request(read), s.now);
    assert!(
        actions.is_empty(),
        "lease mode saves the per-read confirm traffic entirely"
    );
}

#[test]
fn retransmitted_tpaxos_op_replays_cached_reply_without_restaging() {
    let cfg = cluster_cfg(3).with_txn_mode(TxnMode::TPaxos);
    let mut s = Shuttle::new(3, cfg);
    let txn = TxnId(1);
    let op = crate::request::Request::txn_op(
        crate::request::RequestId::new(ClientId(1), crate::types::Seq(1)),
        RequestKind::Write,
        txn,
        Bytes::new(),
    );
    // Deliver the same op twice (a client retransmission).
    for _ in 0..2 {
        s.enqueue(
            Addr::Client(ClientId(1)),
            vec![Action::send(
                Addr::Replica(ProcessId(0)),
                Msg::Request(op.clone()),
            )],
        );
        s.run();
    }
    // Two replies (original + replay), but committing with n_ops = 1 must
    // succeed — proving the op was staged exactly once.
    let replies = s
        .client_inbox
        .iter()
        .filter(|(c, _)| *c == ClientId(1))
        .count();
    assert_eq!(replies, 2, "both deliveries answered");
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    c.next_request_id(); // burn seq 1, used manually above
    let commit = crate::request::Request::txn_commit(c.next_request_id(), txn, 1);
    let actions = c.submit(commit, s.now);
    let done = s.drive_client(&mut c, actions);
    assert_eq!(done.body, ReplyBody::TxnCommitted { txn });
    s.assert_replica_states_converged();
}

#[test]
fn perop_txn_abort_discards_replicated_staging() {
    // In per-op mode the abort itself is a consensus operation, so the
    // backups discard their replicated staging too.
    let cfg = cluster_cfg(3); // PerOp is the default
    let mut s = Shuttle::new(3, cfg);
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    let txn = TxnId(1);
    // One staged write through consensus (NoopApp stages nothing but the
    // instance is consumed).
    let id = c.next_request_id();
    let op = crate::request::Request::txn_op(id, RequestKind::Write, txn, Bytes::new());
    let actions = c.submit(op, s.now);
    let done = s.drive_client(&mut c, actions);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1), "op coordinated");

    let id = c.next_request_id();
    let abort = crate::request::Request::txn_abort(id, txn);
    let actions = c.submit(abort, s.now);
    let done = s.drive_client(&mut c, actions);
    assert_eq!(
        done.body,
        ReplyBody::TxnAborted {
            txn,
            reason: AbortReason::ClientAbort
        }
    );
    assert_eq!(
        s.replica(0).chosen_prefix(),
        Instance(2),
        "the abort is coordinated in per-op mode"
    );
    s.assert_replica_states_converged();
    // Nothing committed.
    for p in 0..3 {
        let snap = s.replica(p).service_snapshot();
        assert_eq!(u64::from_le_bytes(snap[..8].try_into().unwrap()), 0);
    }
}

#[test]
fn candidate_restarts_election_with_higher_ballot_on_timeout() {
    // Isolate r1 as a candidate whose prepares go nowhere; its election
    // timer must produce a fresh, strictly higher ballot each attempt.
    let cfg = cluster_cfg(3).with_bootstrap_leader(None);
    let mut s = Shuttle::new(3, cfg);
    s.now = Time(Dur::from_secs(10).0);
    let r1 = s.replicas[1].as_mut().unwrap();
    let _dropped = r1.on_timer(TimerKind::LeaderCheck, s.now);
    let b1 = r1.promised();
    assert!(matches!(r1.role(), Role::Candidate(_)));
    let _dropped = r1.on_timer(TimerKind::Election, s.now);
    let b2 = r1.promised();
    assert!(
        b2 > b1,
        "retry must outbid the previous attempt: {b1} -> {b2}"
    );
    assert!(matches!(r1.role(), Role::Candidate(_)));
    assert!(r1.stats.elections_started >= 2);
}

#[test]
fn duplicate_accepted_acks_do_not_double_commit() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    let before = s.replica(0).stats.commits_led;
    // Replay a stale Accepted for the already-committed instance.
    let ballot = s.replica(0).promised();
    let r0 = s.replicas[0].as_mut().unwrap();
    let _ = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::Accepted {
            ballot,
            instances: vec![Instance(1)],
        },
        s.now,
    );
    assert_eq!(s.replica(0).stats.commits_led, before, "no double commit");
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));
}

#[test]
fn heartbeats_propagate_chosen_to_slow_followers() {
    // A follower that missed the Chosen message learns commitment from the
    // next heartbeat (heartbeats double as Chosen retransmissions).
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    // Followers applied via the Chosen broadcast in the shuttle run.
    assert_eq!(s.replica(1).chosen_prefix(), Instance(1));
    // Heartbeat on top is harmless and idempotent.
    s.fire(0, TimerKind::Heartbeat);
    assert_eq!(s.replica(1).chosen_prefix(), Instance(1));
    s.assert_replica_states_converged();
}

// ----------------------------------------------------------------------
// Decree batching edges. The shuttle drops timer actions, so the batch
// window only advances when a test fires TimerKind::BatchWindow itself —
// exactly the control these edges need.
// ----------------------------------------------------------------------

/// Queue a raw write at the leader (r0) without running the shuttle.
fn push_write(s: &mut Shuttle, client: u64, seq: u64) -> crate::request::RequestId {
    let id = crate::request::RequestId::new(ClientId(client), crate::types::Seq(seq));
    let req = crate::request::Request::new(id, RequestKind::Write, Bytes::new());
    s.queue.push_back((
        Addr::Client(ClientId(client)),
        Addr::Replica(ProcessId(0)),
        Msg::Request(req),
    ));
    id
}

/// Every request id committed on r0, in log order — duplicates included,
/// so callers can assert nothing was dropped or double-proposed.
fn committed_ids(s: &Shuttle) -> Vec<crate::request::RequestId> {
    let r = s.replica(0);
    let mut ids = Vec::new();
    let mut i = Instance(1);
    while i <= r.chosen_prefix() {
        let (_, d) = r.log.get(i).expect("chosen instance present");
        for e in &d.entries {
            match &e.cmd {
                crate::command::Command::Req(req) => ids.push(req.id),
                crate::command::Command::TxnCommit { id, .. } => ids.push(*id),
                crate::command::Command::Noop => {}
            }
        }
        i = i.next();
    }
    ids
}

fn batch_sizes(s: &Shuttle) -> Vec<usize> {
    let r = s.replica(0);
    let mut sizes = Vec::new();
    let mut i = Instance(1);
    while i <= r.chosen_prefix() {
        sizes.push(r.log.get(i).expect("chosen").1.entries.len());
        i = i.next();
    }
    sizes
}

#[test]
fn queue_exactly_at_max_batch_proposes_one_full_decree() {
    let mut cfg = cluster_cfg(3);
    cfg.max_batch = 4;
    let mut s = Shuttle::new(3, cfg);

    // Burst of 1 + max_batch concurrent writes: the first proposes alone
    // (pipeline free), the other four queue behind it and must come out as
    // exactly one full decree — not 4 singletons, not split.
    let mut expected = Vec::new();
    for i in 0..5u64 {
        expected.push(push_write(&mut s, 10 + i, 1));
    }
    s.run();
    assert_eq!(s.replica(0).chosen_prefix(), Instance(2));
    assert_eq!(batch_sizes(&s), vec![1, 4]);

    // last_batch is now 4 (> 1), so the adaptive window applies. A second
    // burst that reaches exactly max_batch while the window is armed must
    // propose immediately — `queue.len() < max_batch` no longer holds —
    // without any BatchWindow timer ever firing (the shuttle drops them).
    for i in 0..4u64 {
        expected.push(push_write(&mut s, 20 + i, 1));
    }
    s.run();
    assert_eq!(s.replica(0).chosen_prefix(), Instance(3));
    assert_eq!(batch_sizes(&s), vec![1, 4, 4]);

    // Nothing dropped, nothing double-proposed.
    let mut ids = committed_ids(&s);
    assert_eq!(ids.len(), expected.len());
    ids.sort();
    expected.sort();
    assert_eq!(ids, expected);
    s.assert_replica_states_converged();
}

#[test]
fn batch_window_rearm_exhaustion_flushes_the_queue() {
    let mut cfg = cluster_cfg(3);
    cfg.max_batch = 4;
    let mut s = Shuttle::new(3, cfg);

    // Prime last_batch = 2 so the adaptive window arms for small queues.
    for i in 0..3u64 {
        push_write(&mut s, 10 + i, 1);
    }
    s.run();
    assert_eq!(batch_sizes(&s), vec![1, 2]);

    // A lone write now arms the window instead of proposing: it waits for
    // company that never comes.
    let lonely = push_write(&mut s, 30, 1);
    s.run();
    assert_eq!(s.replica(0).chosen_prefix(), Instance(2), "held back");
    {
        let Role::Leader(l) = s.replica(0).role() else {
            panic!("r0 leads")
        };
        assert!(l.window_armed);
        assert_eq!(l.window_rearms, 8);
        assert_eq!(l.queue.len(), 1);
    }

    // Each firing below the previous batch size burns one re-arm...
    for burns in 1..=8u32 {
        s.fire(0, TimerKind::BatchWindow);
        let Role::Leader(l) = s.replica(0).role() else {
            panic!("r0 leads")
        };
        assert_eq!(l.window_rearms, 8 - burns);
        assert_eq!(
            s.replica(0).chosen_prefix(),
            Instance(2),
            "still waiting after {burns} re-arms"
        );
    }
    // ...and with re-arms exhausted the next firing flushes the queue as an
    // undersized decree rather than holding the request forever.
    s.fire(0, TimerKind::BatchWindow);
    assert_eq!(s.replica(0).chosen_prefix(), Instance(3));
    assert_eq!(batch_sizes(&s), vec![1, 2, 1]);
    assert_eq!(committed_ids(&s).last(), Some(&lonely));
    {
        let Role::Leader(l) = s.replica(0).role() else {
            panic!("r0 leads")
        };
        assert!(!l.window_armed);
        assert!(l.queue.is_empty());
    }
    // The request completed exactly once.
    let ids = committed_ids(&s);
    assert_eq!(ids.iter().filter(|id| **id == lonely).count(), 1);
    s.assert_replica_states_converged();
}

#[test]
fn tpaxos_commit_queued_behind_full_batch_is_neither_dropped_nor_doubled() {
    let mut cfg = cluster_cfg(3).with_txn_mode(TxnMode::TPaxos);
    cfg.max_batch = 2;
    cfg.batch_window = Dur::ZERO; // window edges are covered above
    let mut s = Shuttle::new(3, cfg);
    let txn = TxnId(1);

    // T-Paxos op: answered immediately, no coordination yet.
    let op_id = crate::request::RequestId::new(ClientId(1), crate::types::Seq(1));
    let op = crate::request::Request::txn_op(op_id, RequestKind::Write, txn, Bytes::new());
    s.queue.push_back((
        Addr::Client(ClientId(1)),
        Addr::Replica(ProcessId(0)),
        Msg::Request(op),
    ));
    s.run();
    assert_eq!(s.replica(0).chosen_prefix(), Instance::ZERO);

    // Now a burst: w1 proposes alone, w2+w3 fill a max_batch decree, and
    // the commit request lands behind that full batch in the queue.
    let w1 = push_write(&mut s, 11, 1);
    let w2 = push_write(&mut s, 12, 1);
    let w3 = push_write(&mut s, 13, 1);
    let commit_id = crate::request::RequestId::new(ClientId(1), crate::types::Seq(2));
    let commit = crate::request::Request::txn_commit(commit_id, txn, 1);
    s.queue.push_back((
        Addr::Client(ClientId(1)),
        Addr::Replica(ProcessId(0)),
        Msg::Request(commit),
    ));
    s.run();

    // Three decrees: [w1], [w2, w3] (full), [commit].
    assert_eq!(batch_sizes(&s), vec![1, 2, 1]);
    assert_eq!(committed_ids(&s), vec![w1, w2, w3, commit_id]);

    // The commit decree reconstructs the session's ops and the stash is
    // drained — a retransmitted commit would abort, not re-propose.
    let (_, d) = s.replica(0).log.get(Instance(3)).expect("commit decree");
    match &d.entries[0].cmd {
        crate::command::Command::TxnCommit { id, txn: t, ops } => {
            assert_eq!(*id, commit_id);
            assert_eq!(*t, txn);
            assert_eq!(ops.len(), 1);
            assert_eq!(ops[0].id, op_id);
        }
        other => panic!("expected TxnCommit, got {other:?}"),
    }
    {
        let Role::Leader(l) = s.replica(0).role() else {
            panic!("r0 leads")
        };
        assert!(l.committing.is_empty(), "commit stash drained");
        assert!(l.txns.is_empty(), "session closed");
        assert!(l.queue.is_empty());
    }
    // The client saw the committed transaction exactly once.
    let commit_replies = s
        .client_inbox
        .iter()
        .filter(|(c, m)| {
            *c == ClientId(1)
                && matches!(m, Msg::Reply(r) if r.id == commit_id
                    && r.body == ReplyBody::TxnCommitted { txn })
        })
        .count();
    assert_eq!(commit_replies, 1);
    s.assert_replica_states_converged();
}

#[test]
fn singleton_group_commits_alone() {
    let mut s = Shuttle::new(1, cluster_cfg(1));
    assert_eq!(s.leader(), Some(0));
    let mut c = ClientCore::new(ClientId(1), 1, Dur::from_millis(100));
    let done = s.submit(&mut c, RequestKind::Write);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    let done = s.submit(&mut c, RequestKind::Read);
    assert!(matches!(done.body, ReplyBody::Ok(_)));
    assert_eq!(s.replica(0).chosen_prefix(), Instance(1));
}

// ----------------------------------------------------------------------
// Epoch-batched confirm rounds (extension). These tests model a read whose
// client broadcast only reached the leader — the follower copies were lost
// — so per-read confirms never arrive and only a round can complete it.
// ----------------------------------------------------------------------

/// Queue a read at the leader (r0) only, without running the shuttle.
fn push_read(s: &mut Shuttle, client: u64, seq: u64) -> crate::request::RequestId {
    let id = crate::request::RequestId::new(ClientId(client), crate::types::Seq(seq));
    let req = crate::request::Request::new(id, RequestKind::Read, Bytes::new());
    s.queue.push_back((
        Addr::Client(ClientId(client)),
        Addr::Replica(ProcessId(0)),
        Msg::Request(req),
    ));
    id
}

fn read_req(client: u64, seq: u64) -> crate::request::Request {
    crate::request::Request::new(
        crate::request::RequestId::new(ClientId(client), crate::types::Seq(seq)),
        RequestKind::Read,
        Bytes::new(),
    )
}

#[test]
fn early_confirm_buffer_is_bounded_fifo() {
    let cap = super::leader::EARLY_CONFIRM_CAP;
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let ballot = s.replica(0).promised();
    // Confirms for reads whose client requests never arrive at the leader
    // (the client crashed mid-broadcast, say). The buffer must stay
    // bounded, evicting oldest-first.
    let overflow = 8;
    for seq in 0..(cap + overflow) as u64 {
        let read = crate::request::RequestId::new(ClientId(99), crate::types::Seq(seq));
        s.queue.push_back((
            Addr::Replica(ProcessId(1)),
            Addr::Replica(ProcessId(0)),
            Msg::Confirm { ballot, read },
        ));
    }
    s.run();
    let Role::Leader(l) = s.replica(0).role() else {
        panic!("r0 leads")
    };
    assert_eq!(l.early_confirms.len(), cap);
    assert_eq!(l.early_order.len(), cap);
    for seq in 0..overflow as u64 {
        let oldest = crate::request::RequestId::new(ClientId(99), crate::types::Seq(seq));
        assert!(!l.early_confirms.contains_key(&oldest), "oldest evicted");
    }
    let newest = crate::request::RequestId::new(
        ClientId(99),
        crate::types::Seq((cap + overflow - 1) as u64),
    );
    assert!(l.early_confirms.contains_key(&newest), "newest retained");
}

#[test]
fn concurrent_reads_complete_through_a_single_confirm_round() {
    let deep = super::leader::CONFIRM_BACKLOG_THRESHOLD as u64;
    let mut s = Shuttle::new(3, cluster_cfg(3));
    for client in 1..=deep {
        push_read(&mut s, client, 1);
    }
    s.run();
    // All reads completed through one round — no per-read confirm could
    // have voted for them.
    assert_eq!(s.replica(0).stats.confirm_rounds, 1);
    assert_eq!(s.replica(0).stats.batched_reads, deep);
    assert_eq!(s.replica(0).stats.xpaxos_reads, deep);
    let replies = s
        .client_inbox
        .iter()
        .filter(|(_, m)| matches!(m, Msg::Reply(_)))
        .count();
    assert_eq!(replies, deep as usize);
    // The round carried the backlog hint: followers switched off per-read
    // confirms.
    assert!(s.replica(1).confirm_suppressed);
    assert!(s.replica(2).confirm_suppressed);
    // Hysteresis: the next lone read still rides a round (followers are
    // suppressed, so nothing else can complete it)...
    push_read(&mut s, deep + 1, 1);
    s.run();
    assert_eq!(s.replica(0).stats.confirm_rounds, 2);
    assert!(
        s.replica(1).confirm_suppressed,
        "one shallow round keeps the hint up through a burst gap"
    );
    // ...and only a second consecutive shallow round lifts suppression.
    push_read(&mut s, deep + 2, 1);
    s.run();
    assert_eq!(s.replica(0).stats.confirm_rounds, 3);
    assert!(!s.replica(1).confirm_suppressed);
    assert!(!s.replica(2).confirm_suppressed);
    assert_eq!(s.replica(0).stats.xpaxos_reads, deep + 2);
}

#[test]
fn retransmitted_lone_read_forces_a_confirm_round() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    // A lone read that reached only the leader launches no round — its
    // per-read confirms are presumed in flight — so it stalls for now.
    push_read(&mut s, 1, 1);
    s.run();
    assert_eq!(s.replica(0).stats.confirm_rounds, 0);
    assert!(
        s.client_inbox.is_empty(),
        "no votes, no round: the read cannot have completed"
    );
    // The client retransmission withdraws that presumption: the leader
    // must force a round rather than stall forever.
    push_read(&mut s, 1, 1);
    s.run();
    assert_eq!(s.replica(0).stats.confirm_rounds, 1);
    assert_eq!(s.replica(0).stats.batched_reads, 1);
    assert!(s
        .client_inbox
        .iter()
        .any(|(c, m)| *c == ClientId(1) && matches!(m, Msg::Reply(_))));
}

#[test]
fn stale_confirm_batch_answers_are_ignored() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let ballot = s.replica(0).promised();
    let now = s.now;
    let r0 = s.replicas[0].as_mut().unwrap();
    // No round in flight: a late duplicate answer is a no-op.
    let out = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::ConfirmBatch { ballot, epoch: 7 },
        now,
    );
    assert!(out.is_empty());
    // Open round epoch 1 with a backlog of leader-only reads, answers
    // withheld.
    let deep = super::leader::CONFIRM_BACKLOG_THRESHOLD as u64;
    let mut launched = false;
    for client in 1..=deep {
        let acts = r0.on_message(
            Addr::Client(ClientId(client)),
            Msg::Request(read_req(client, 1)),
            now,
        );
        launched |= acts.iter().any(|a| {
            matches!(
                a,
                Action::ToAllReplicas {
                    msg: Msg::ConfirmReq { epoch: 1, .. }
                }
            )
        });
    }
    assert!(launched, "a deep backlog must open round epoch 1");
    // Answers for the wrong epoch must not complete the round.
    for epoch in [0, 9] {
        let out = r0.on_message(
            Addr::Replica(ProcessId(1)),
            Msg::ConfirmBatch { ballot, epoch },
            now,
        );
        assert!(out.is_empty(), "epoch {epoch} is not the sealed epoch");
    }
    // Nor do answers from a different leadership's round.
    let out = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::ConfirmBatch {
            ballot: crate::ballot::Ballot::ZERO,
            epoch: 1,
        },
        now,
    );
    assert!(out.is_empty());
    // The matching answer still completes it afterwards.
    let out = r0.on_message(
        Addr::Replica(ProcessId(1)),
        Msg::ConfirmBatch { ballot, epoch: 1 },
        now,
    );
    let replies = out
        .iter()
        .filter(|a| {
            matches!(
                a,
                Action::Send {
                    to: Addr::Client(_),
                    msg: Msg::Reply(_)
                }
            )
        })
        .count();
    assert_eq!(
        replies, deep as usize,
        "one valid majority answer releases every covered read"
    );
    assert_eq!(r0.stats.batched_reads, deep);
}

#[test]
fn confirm_round_answers_after_losing_leadership_are_ignored() {
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let old_ballot = s.replica(0).promised();
    // Make the leader look dead to r1's failure detector.
    s.now = Time(Dur::from_secs(10).0);
    let now = s.now;
    {
        // Round epoch 1 in flight at r0 (answers withheld).
        let r0 = s.replicas[0].as_mut().unwrap();
        for client in 1..=super::leader::CONFIRM_BACKLOG_THRESHOLD as u64 {
            let _ = r0.on_message(
                Addr::Client(ClientId(client)),
                Msg::Request(read_req(client, 1)),
                now,
            );
        }
    }
    // r1 seizes leadership; r0 adopts the higher ballot and steps down,
    // dropping its pending reads and its round.
    s.fire(1, TimerKind::LeaderCheck);
    assert_eq!(s.leader(), Some(1));
    // The old round's answer arrives late at the deposed leader: it must
    // be dropped on the floor, not answer the abandoned reads.
    let r0 = s.replicas[0].as_mut().unwrap();
    let out = r0.on_message(
        Addr::Replica(ProcessId(2)),
        Msg::ConfirmBatch {
            ballot: old_ballot,
            epoch: 1,
        },
        now,
    );
    assert!(out.is_empty(), "a deposed leader ignores its old round");
    // The same stale answer at the new leader is ignored too.
    let r1 = s.replicas[1].as_mut().unwrap();
    let out = r1.on_message(
        Addr::Replica(ProcessId(2)),
        Msg::ConfirmBatch {
            ballot: old_ballot,
            epoch: 1,
        },
        now,
    );
    assert!(out.is_empty(), "another leadership's answers never count");
    // No client ever saw a reply from the abandoned reads.
    assert!(s
        .client_inbox
        .iter()
        .all(|(_, m)| !matches!(m, Msg::Reply(_))));
}

#[test]
fn disabled_confirm_batching_leaves_the_per_read_path_untouched() {
    let mut s = Shuttle::new(3, cluster_cfg(3).with_confirm_batching(false));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    for _ in 0..3 {
        let done = s.submit(&mut c, RequestKind::Read);
        assert!(matches!(done.body, ReplyBody::Ok(_)));
    }
    assert_eq!(s.replica(0).stats.xpaxos_reads, 3);
    assert_eq!(s.replica(0).stats.confirm_rounds, 0);
    assert_eq!(s.replica(0).stats.batched_reads, 0);
    // A deep backlog of leader-only reads (and even a retransmission)
    // launches no rounds with batching off — the knob leaves every new
    // path dormant.
    for client in 10..10 + super::leader::CONFIRM_BACKLOG_THRESHOLD as u64 {
        push_read(&mut s, client, 1);
    }
    push_read(&mut s, 10, 1);
    s.run();
    assert_eq!(s.replica(0).stats.confirm_rounds, 0);
    assert!(!s.replica(1).confirm_suppressed);
}

#[test]
fn lone_reads_with_batching_on_use_the_per_read_path_unchanged() {
    // Sequential single-client reads (the paper's E1 setup) must behave
    // byte-identically with batching on: confirms arrive per read, no
    // round ever launches, and followers stay unsuppressed.
    let mut s = Shuttle::new(3, cluster_cfg(3));
    let mut c = ClientCore::new(ClientId(1), 3, Dur::from_millis(100));
    s.submit(&mut c, RequestKind::Write);
    for _ in 0..3 {
        let done = s.submit(&mut c, RequestKind::Read);
        assert!(matches!(done.body, ReplyBody::Ok(_)));
    }
    assert_eq!(s.replica(0).stats.xpaxos_reads, 3);
    assert_eq!(s.replica(0).stats.confirm_rounds, 0);
    assert_eq!(s.replica(0).stats.batched_reads, 0);
    assert!(!s.replica(1).confirm_suppressed);
    assert!(!s.replica(2).confirm_suppressed);
}
