//! Leader-role logic: sequencing writes through consensus (§3.3), the
//! X-Paxos read fast path (§3.4) and T-Paxos transaction sessions (§3.5).

use super::{Replica, Role};
use crate::action::{Action, TimerKind};
use crate::ballot::Ballot;
use crate::command::{Command, Decree, DecreeEntry, StateUpdate};
use crate::config::{ReadMode, TxnMode, ValueMode};
use crate::msg::Msg;
use crate::request::{AbortReason, Reply, ReplyBody, Request, RequestId, RequestKind, TxnCtl};
use crate::service::ExecCtx;
use crate::types::{Addr, ClientId, Instance, ProcessId, Time, TxnId};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Cap on buffered early read-confirms (confirms that outrace the client's
/// own request to the leader). FIFO-evicted beyond this.
pub(crate) const EARLY_CONFIRM_CAP: usize = 1024;

/// Minimum backlog before a confirm round carries the suppression hint. A
/// round serializes its covered reads behind one replica↔replica round
/// trip, while per-read confirms pipeline — so batching only pays once a
/// single round amortizes over enough reads. Below this threshold the
/// leader leaves the per-read path alone (no rounds, no suppression);
/// above it, one `ConfirmReq`/`ConfirmBatch` exchange replaces
/// `covered × (n - 1)` confirm messages.
pub(crate) const CONFIRM_BACKLOG_THRESHOLD: usize = 24;

/// The single outstanding proposal (§3.3: "The leader never tries to
/// propose more than one proposal simultaneously").
#[derive(Debug)]
pub(crate) struct Inflight {
    pub instance: Instance,
    pub acks: HashSet<ProcessId>,
}

/// The batched accept phase a fresh leader runs for recovered instances.
#[derive(Debug, Default)]
pub(crate) struct RecoveryBatch {
    /// Instances still lacking a majority.
    pub pending: BTreeSet<Instance>,
    /// Acks per instance (self included).
    pub acks: HashMap<Instance, HashSet<ProcessId>>,
}

/// An X-Paxos read in progress at the leader.
#[derive(Debug)]
pub struct PendingRead {
    /// The read request (always present; early confirms are buffered
    /// separately until the request arrives).
    pub req: Request,
    /// Replicas that confirmed our leadership for this read (self included).
    pub votes: HashSet<ProcessId>,
    /// Execution result, once the read has run.
    pub result: Option<ReplyBody>,
    /// Arrival time (for latency accounting).
    pub arrived: Time,
    /// Confirm epoch this read was opened under: the next round the leader
    /// will launch. A completed round with an equal-or-higher epoch
    /// validates the read (extension; per-read `Confirm` votes still count).
    pub epoch: u64,
    /// Set once a confirm round covering `epoch` reached a majority.
    pub confirmed: bool,
}

/// An in-flight epoch-confirm round (extension): the leader broadcast one
/// `ConfirmReq { epoch }` and each follower answers with one
/// `ConfirmBatch`, validating every read opened in `epoch` or earlier.
#[derive(Debug)]
pub(crate) struct ConfirmRound {
    /// The sealed epoch.
    pub epoch: u64,
    /// Whether the round carried the load hint (covered more than one read).
    pub backlog: bool,
    /// Followers that answered (self is implicit).
    pub acks: HashSet<ProcessId>,
}

/// A T-Paxos transaction session on the leader: operations executed and
/// answered immediately, coordination deferred to commit.
#[derive(Debug, Default)]
pub struct TxnSession {
    /// Operations executed so far, with their cached replies (for
    /// idempotent retransmission handling).
    pub ops: Vec<(Request, Bytes)>,
}

/// Mutable state of the leader role.
#[derive(Debug)]
pub struct LeaderState {
    /// The leadership ballot.
    pub ballot: Ballot,
    /// Next unused instance.
    pub(crate) next_instance: Instance,
    /// Requests awaiting their turn (strict pipelining: depth one).
    pub(crate) queue: VecDeque<Request>,
    pub(crate) inflight: Option<Inflight>,
    pub(crate) recovery: Option<RecoveryBatch>,
    pub(crate) reads: HashMap<RequestId, PendingRead>,
    pub(crate) early_confirms: HashMap<RequestId, HashSet<ProcessId>>,
    pub(crate) early_order: VecDeque<RequestId>,
    /// Highest confirm epoch launched under this leadership (extension).
    pub(crate) confirm_epoch: u64,
    /// The confirm round currently in flight, if any. Rounds are
    /// event-driven: one launches the moment an unconfirmed read exists and
    /// none is in flight, so a read never waits on a batching window.
    pub(crate) confirm_round: Option<ConfirmRound>,
    /// Load observed when the last round completed: the larger of how
    /// many reads it validated and how many it left unconfirmed.
    /// Hysteresis for the backlog hint: a burst drains the read table
    /// between rounds, so the first read of the next burst would
    /// otherwise look like a lone read and flap the followers out of
    /// suppression every cycle.
    pub(crate) last_round_covered: usize,
    /// Whether the most recent `ConfirmReq` carried `backlog = true`,
    /// i.e. the followers are (as far as the leader knows) suppressing
    /// per-read confirms and open reads complete only through rounds.
    pub(crate) suppress_hinted: bool,
    /// Active T-Paxos sessions.
    pub(crate) txns: HashMap<(ClientId, TxnId), TxnSession>,
    /// T-Paxos sessions whose commit request is queued but not yet
    /// proposed (ops retained to build the commit decree).
    pub(crate) committing: HashMap<RequestId, ((ClientId, TxnId), TxnSession)>,
    /// Monotonic heartbeat counter (anchors read leases).
    pub(crate) hb_seq: u64,
    /// When the heartbeat `hb_seq` was sent.
    pub(crate) hb_sent_at: Time,
    /// Followers that acked heartbeat `hb_seq`.
    pub(crate) hb_acks: HashSet<ProcessId>,
    /// Read lease expiry (Lease mode): local reads allowed before this.
    pub(crate) lease_until: Time,
    /// Size of the last decree proposed (drives the adaptive batch window).
    pub(crate) last_batch: usize,
    /// Whether a batch-window timer is pending.
    pub(crate) window_armed: bool,
    /// Remaining re-arms of the batch window while the queue keeps growing.
    pub(crate) window_rearms: u32,
}

impl LeaderState {
    pub(crate) fn new(ballot: Ballot, next_instance: Instance) -> LeaderState {
        LeaderState {
            ballot,
            next_instance,
            queue: VecDeque::new(),
            inflight: None,
            recovery: None,
            reads: HashMap::new(),
            early_confirms: HashMap::new(),
            early_order: VecDeque::new(),
            confirm_epoch: 0,
            confirm_round: None,
            last_round_covered: 0,
            suppress_hinted: false,
            txns: HashMap::new(),
            committing: HashMap::new(),
            hb_seq: 0,
            hb_sent_at: Time::ZERO,
            hb_acks: HashSet::new(),
            lease_until: Time::ZERO,
            last_batch: 0,
            window_armed: false,
            window_rearms: 0,
        }
    }

    /// Whether a read lease is currently held (Lease mode).
    pub(crate) fn lease_valid(&self, now: Time) -> bool {
        now < self.lease_until
    }

    /// Whether the leader may start executing work against committed state
    /// (no tentative proposal outstanding, recovery finished).
    fn quiescent(&self) -> bool {
        self.inflight.is_none() && self.recovery.is_none()
    }

    /// Whether a request with this id is already being worked on.
    fn knows_request(&self, id: RequestId) -> bool {
        self.reads.contains_key(&id)
            || self.committing.contains_key(&id)
            || self.queue.iter().any(|r| r.id == id)
    }

    fn buffer_early_confirm(&mut self, read: RequestId, from: ProcessId) {
        let entry = self.early_confirms.entry(read).or_insert_with(|| {
            self.early_order.push_back(read);
            HashSet::new()
        });
        entry.insert(from);
        while self.early_order.len() > EARLY_CONFIRM_CAP {
            if let Some(old) = self.early_order.pop_front() {
                self.early_confirms.remove(&old);
            }
        }
    }

    fn take_early_confirms(&mut self, read: RequestId) -> Option<HashSet<ProcessId>> {
        let got = self.early_confirms.remove(&read);
        if got.is_some() {
            self.early_order.retain(|r| *r != read);
        }
        got
    }
}

impl Replica {
    // ------------------------------------------------------------------
    // Request dispatch (all roles)
    // ------------------------------------------------------------------

    pub(crate) fn handle_request(&mut self, req: Request, now: Time, out: &mut Vec<Action>) {
        if self.is_leader() {
            self.leader_handle_request(req, now, out);
            return;
        }
        // Follower / candidate. For X-Paxos reads, "every other service
        // process sends a confirm message to the process with the highest
        // ballot number it has accepted" (§3.4). Everything else is the
        // leader's business (the client broadcast already reached it).
        let tpaxos_txn_op = req.is_txn_op() && self.cfg.txn_mode == TxnMode::TPaxos;
        if req.kind == RequestKind::Read
            && self.cfg.read_mode == ReadMode::XPaxos
            && !tpaxos_txn_op
            && !self.confirm_suppressed
            && !self.promised.is_zero()
            && self.promised.proposer != self.id
        {
            out.push(Action::send(
                Addr::Replica(self.promised.proposer),
                Msg::Confirm {
                    ballot: self.promised,
                    read: req.id,
                },
            ));
        }
    }

    fn reply_to(&self, id: RequestId, body: ReplyBody, out: &mut Vec<Action>) {
        out.push(Action::send(
            Addr::Client(id.client),
            Msg::Reply(Reply {
                id,
                leader: self.id,
                body,
            }),
        ));
    }

    fn leader_handle_request(&mut self, req: Request, now: Time, out: &mut Vec<Action>) {
        // At-most-once: answer duplicates from the dedup table.
        if let Some((seq, reply)) = self.dedup.get(&req.id.client) {
            if req.id.seq < *seq {
                return;
            }
            if req.id.seq == *seq {
                let cached = reply.clone();
                self.reply_to(req.id, cached, out);
                return;
            }
        }
        // Already queued / in flight / pending: the retransmission will be
        // answered when the original completes.
        {
            let Role::Leader(l) = &self.role else { return };
            if l.knows_request(req.id)
                || l.inflight.is_some()
                    && self
                        .log
                        .get(l.next_instance.prev())
                        .is_some_and(|(_, d)| d.answers(req.id))
            {
                // A retransmitted read still waiting on a confirm round:
                // re-send the round request in case it (or its answers)
                // was lost, and force a fresh round if none is in flight
                // (possible when a suppression-lifting hint was itself
                // lost, leaving followers silent with no round coming).
                // The per-read path gets the same liveness for free —
                // followers re-confirm the retransmitted broadcast.
                let stalled_read = l.reads.contains_key(&req.id);
                if stalled_read {
                    if let Some(round) = &l.confirm_round {
                        out.push(Action::broadcast(Msg::ConfirmReq {
                            ballot: l.ballot,
                            epoch: round.epoch,
                            backlog: round.backlog,
                        }));
                        return;
                    }
                    self.maybe_launch_confirm_round(true, out);
                }
                return;
            }
        }

        match (req.kind, req.txn, self.cfg.txn_mode) {
            (RequestKind::Original, _, _) => {
                // Unreplicated baseline: execute and answer immediately,
                // with no coordination and no durability.
                self.stats.originals += 1;
                let mut ctx = ExecCtx::new(now, &mut self.rng);
                let (bytes, _update) = self.app.execute(&req, &mut ctx);
                self.reply_to(req.id, ReplyBody::Ok(bytes), out);
            }
            (_, Some(TxnCtl::Op { txn }), TxnMode::TPaxos) => {
                self.tpaxos_op(req, txn, now, out);
            }
            (_, Some(TxnCtl::Commit { txn, n_ops }), TxnMode::TPaxos) => {
                self.tpaxos_commit(req, txn, n_ops, now, out);
            }
            (_, Some(TxnCtl::Abort { txn }), TxnMode::TPaxos) => {
                self.tpaxos_abort(req, txn, out);
            }
            (RequestKind::Read, _, _) if self.cfg.read_mode == ReadMode::XPaxos => {
                self.leader_handle_read(req, now, out);
            }
            (RequestKind::Read, _, _) if self.cfg.read_mode == ReadMode::Lease => {
                let leased = matches!(&self.role, Role::Leader(l) if l.lease_valid(now));
                if leased {
                    // Local read under the lease: no per-read messages at
                    // all; completion only awaits quiescence.
                    self.leader_handle_read(req, now, out);
                } else {
                    // No lease (e.g. right after taking over): fall back
                    // to a full consensus instance for safety.
                    let Role::Leader(l) = &mut self.role else {
                        return;
                    };
                    l.queue.push_back(req);
                    self.try_propose_next(now, out);
                }
            }
            _ => {
                // Writes, consensus-mode reads, and per-operation
                // transaction traffic: strict-pipelined consensus.
                let Role::Leader(l) = &mut self.role else {
                    return;
                };
                l.queue.push_back(req);
                self.try_propose_next(now, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // X-Paxos reads (§3.4)
    // ------------------------------------------------------------------

    fn leader_handle_read(&mut self, req: Request, now: Time, out: &mut Vec<Action>) {
        let id = req.id;
        let me = self.id;
        let quiescent = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            let mut votes = l.take_early_confirms(id).unwrap_or_default();
            votes.insert(me);
            let epoch = l.confirm_epoch + 1;
            l.reads.insert(
                id,
                PendingRead {
                    req,
                    votes,
                    result: None,
                    arrived: now,
                    epoch,
                    confirmed: false,
                },
            );
            l.quiescent()
        };
        if quiescent {
            self.execute_pending_read(id, now);
        }
        self.check_read_complete(id, now, out);
        self.maybe_launch_confirm_round(false, out);
    }

    /// Execute a pending read against committed state. Callable only when
    /// the leader is quiescent (otherwise the read would observe a
    /// tentative, possibly-rolled-back write).
    fn execute_pending_read(&mut self, id: RequestId, now: Time) {
        let req = {
            let Role::Leader(l) = &self.role else { return };
            match l.reads.get(&id) {
                Some(p) if p.result.is_none() => p.req.clone(),
                _ => return,
            }
        };
        let body = match req.txn {
            // Per-op transactional read: consult the service's transaction
            // view (own staged writes visible); reads stage nothing.
            Some(TxnCtl::Op { txn }) => {
                let mut ctx = ExecCtx::new(now, &mut self.rng);
                match self.app.txn_execute(txn, &req, true, &mut ctx) {
                    Ok((bytes, update)) => {
                        debug_assert!(update.is_none(), "reads must not stage state");
                        ReplyBody::Ok(bytes)
                    }
                    Err(reason) => ReplyBody::TxnAborted { txn, reason },
                }
            }
            _ => {
                let mut ctx = ExecCtx::new(now, &mut self.rng);
                let (bytes, update) = self.app.execute(&req, &mut ctx);
                debug_assert!(update.is_none(), "reads must not change service state");
                ReplyBody::Ok(bytes)
            }
        };
        if let Role::Leader(l) = &mut self.role {
            if let Some(p) = l.reads.get_mut(&id) {
                p.result = Some(body);
            }
        }
    }

    fn check_read_complete(&mut self, id: RequestId, now: Time, out: &mut Vec<Action>) {
        let majority = self.cfg.majority();
        let lease_mode = self.cfg.read_mode == ReadMode::Lease;
        enum Disposition {
            Wait,
            Reply,
            /// The lease lapsed under a lease-mode read: re-route through
            /// consensus for safety.
            Requeue(Request),
        }
        let disposition = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            match l.reads.get(&id) {
                None => Disposition::Wait,
                Some(p) if p.result.is_none() => Disposition::Wait,
                Some(p) => {
                    if lease_mode {
                        if l.lease_valid(now) {
                            Disposition::Reply
                        } else {
                            Disposition::Requeue(p.req.clone())
                        }
                    } else if p.votes.len() >= majority || p.confirmed {
                        Disposition::Reply
                    } else {
                        Disposition::Wait
                    }
                }
            }
        };
        match disposition {
            Disposition::Wait => {}
            Disposition::Reply => {
                // The read was just observed present with a result; take it
                // out by ownership (no-op if that somehow no longer holds).
                let removed = {
                    let Role::Leader(l) = &mut self.role else {
                        return;
                    };
                    l.reads.remove(&id)
                };
                let Some(p) = removed else { return };
                let Some(body) = p.result else { return };
                if lease_mode {
                    self.stats.lease_reads += 1;
                } else {
                    self.stats.xpaxos_reads += 1;
                    if p.votes.len() < majority {
                        self.stats.batched_reads += 1;
                    }
                }
                self.reply_to(id, body, out);
            }
            Disposition::Requeue(req) => {
                let Role::Leader(l) = &mut self.role else {
                    return;
                };
                l.reads.remove(&id);
                l.queue.push_back(req);
                self.try_propose_next(now, out);
            }
        }
    }

    pub(crate) fn handle_confirm(
        &mut self,
        from: Addr,
        ballot: Ballot,
        read: RequestId,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        self.note_ballot(ballot);
        let Some(pid) = from.as_replica() else { return };
        {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            if l.ballot != ballot {
                return; // confirm for a different leadership
            }
            match l.reads.get_mut(&read) {
                Some(p) => {
                    p.votes.insert(pid);
                }
                None => {
                    // Outran the client's request; buffer it.
                    l.buffer_early_confirm(read, pid);
                    return;
                }
            }
        }
        self.check_read_complete(read, now, out);
    }

    // ------------------------------------------------------------------
    // Epoch-batched confirm rounds (extension)
    // ------------------------------------------------------------------

    /// Launch a confirm round if batching is on, none is in flight, and at
    /// least one read still lacks leadership confirmation. Rounds are
    /// purely event-driven — launched on read arrival and re-launched on
    /// round completion — so a lone read never waits on a window, and
    /// reads arriving during an in-flight round accumulate into the next
    /// epoch.
    ///
    /// A shallow backlog (under [`CONFIRM_BACKLOG_THRESHOLD`] both now and
    /// in the last round, followers not suppressed) launches no round at
    /// all: the per-read confirms are already in flight and pipeline
    /// better than a serialized round would.
    /// `force` overrides that skip — used on client retransmissions, where
    /// the leader can no longer assume the per-read confirms ever arrived.
    fn maybe_launch_confirm_round(&mut self, force: bool, out: &mut Vec<Action>) {
        if !self.cfg.confirm_batching || self.cfg.read_mode != ReadMode::XPaxos {
            return;
        }
        let majority = self.cfg.majority();
        let Role::Leader(l) = &mut self.role else {
            return;
        };
        if l.confirm_round.is_some() {
            return;
        }
        let covered = l
            .reads
            .values()
            .filter(|p| !p.confirmed && p.votes.len() < majority)
            .count();
        if covered == 0 {
            return;
        }
        // The load hint, with two-level hysteresis. Entry: only a backlog
        // deep enough to amortize a round's serialization switches the
        // followers to suppression — shallower congestion is served better
        // by the pipelined per-read confirms. Persistence: once suppressed,
        // rounds launch at burst boundaries and each covers only the
        // arrivals of one round-trip, typically below the entry threshold;
        // any round covering more than a lone read keeps the hint up, and
        // only two consecutive single-read rounds (genuine load collapse)
        // lift suppression.
        let backlog = if l.suppress_hinted {
            covered > 1 || l.last_round_covered > 1
        } else {
            covered >= CONFIRM_BACKLOG_THRESHOLD
        };
        if !force && !backlog && !l.suppress_hinted {
            return;
        }
        l.confirm_epoch += 1;
        l.suppress_hinted = backlog;
        l.confirm_round = Some(ConfirmRound {
            epoch: l.confirm_epoch,
            backlog,
            acks: HashSet::new(),
        });
        self.stats.confirm_rounds += 1;
        out.push(Action::broadcast(Msg::ConfirmReq {
            ballot: l.ballot,
            epoch: l.confirm_epoch,
            backlog,
        }));
    }

    /// A follower validated a whole confirm epoch. On a majority, every
    /// read opened in that epoch or earlier is leadership-confirmed at
    /// once — the O(n)-per-round traffic that replaces O(reads × n)
    /// per-read confirms. Stale answers (wrong ballot after a leader
    /// change, or an epoch already rolled over) are ignored.
    pub(crate) fn handle_confirm_batch(
        &mut self,
        from: Addr,
        ballot: Ballot,
        epoch: u64,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        self.note_ballot(ballot);
        let Some(pid) = from.as_replica() else { return };
        let majority = self.cfg.majority();
        let completed: Vec<RequestId> = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            if l.ballot != ballot {
                return; // an answer to a different leadership's round
            }
            let Some(round) = &mut l.confirm_round else {
                return; // no round in flight (late duplicate answer)
            };
            if round.epoch != epoch {
                return; // the epoch has rolled over since this was sent
            }
            round.acks.insert(pid);
            if round.acks.len() + 1 < majority {
                return;
            }
            l.confirm_round = None;
            let mut completed: Vec<RequestId> = l
                .reads
                .iter_mut()
                .filter(|(_, p)| !p.confirmed && p.epoch <= epoch)
                .map(|(id, p)| {
                    p.confirmed = true;
                    *id
                })
                .collect();
            // `reads` is a HashMap, so collection order is arbitrary per
            // process; replies must go out in a fixed order or a seeded
            // simulation run stops being reproducible.
            completed.sort_unstable();
            // Load measure for the hysteresis: what this round covered OR
            // what it left behind, whichever is larger. A round that
            // covers one read but leaves a dozen unconfirmed is a burst
            // boundary, not a load collapse — only a round that both
            // covers ≤1 and leaves ≤1 signals the closed loop has drained.
            let remaining = l.reads.values().filter(|p| !p.confirmed).count();
            l.last_round_covered = completed.len().max(remaining);
            completed
        };
        for id in completed {
            self.check_read_complete(id, now, out);
        }
        // Reads that arrived during the round are waiting in the next
        // epoch: seal and launch it immediately.
        self.maybe_launch_confirm_round(false, out);
    }

    // ------------------------------------------------------------------
    // T-Paxos transactions (§3.5)
    // ------------------------------------------------------------------

    fn tpaxos_op(&mut self, req: Request, txn: TxnId, now: Time, out: &mut Vec<Action>) {
        let key = (req.id.client, txn);
        let is_new = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            if let Some(sess) = l.txns.get(&key) {
                // Retransmitted op: replay the cached reply.
                if let Some((_, cached)) = sess.ops.iter().find(|(r, _)| r.id == req.id) {
                    let cached = cached.clone();
                    self.reply_to(req.id, ReplyBody::Ok(cached), out);
                    return;
                }
                false
            } else {
                l.txns.insert(key, TxnSession::default());
                true
            }
        };
        if is_new {
            self.app.txn_begin(txn);
        }
        let mut ctx = ExecCtx::new(now, &mut self.rng);
        // Volatile staging: the effect lives only on this leader until the
        // commit decree replicates it.
        match self.app.txn_execute(txn, &req, false, &mut ctx) {
            Ok((bytes, _staging_ignored)) => {
                if let Role::Leader(l) = &mut self.role {
                    if let Some(sess) = l.txns.get_mut(&key) {
                        sess.ops.push((req.clone(), bytes.clone()));
                    }
                }
                // The paper's point: "the response time of individual
                // requests is the same as for an unreplicated service".
                self.reply_to(req.id, ReplyBody::Ok(bytes), out);
            }
            Err(reason) => {
                self.app.txn_abort(txn);
                if let Role::Leader(l) = &mut self.role {
                    l.txns.remove(&key);
                }
                self.stats.txns_aborted += 1;
                self.reply_to(req.id, ReplyBody::TxnAborted { txn, reason }, out);
            }
        }
    }

    fn tpaxos_commit(
        &mut self,
        req: Request,
        txn: TxnId,
        n_ops: u32,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        let key = (req.id.client, txn);
        let session = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            l.txns.remove(&key)
        };
        match session {
            Some(sess) if sess.ops.len() == n_ops as usize => {
                // Stash the session for decree construction at propose time
                // and enter the consensus pipeline: this is the *only*
                // coordination the transaction pays for.
                let Role::Leader(l) = &mut self.role else {
                    return;
                };
                l.committing.insert(req.id, (key, sess));
                l.queue.push_back(req);
                self.try_propose_next(now, out);
            }
            other => {
                // Missing session or an op-count mismatch: this leader did
                // not see the whole transaction (it took over mid-flight) —
                // abort, exactly as §3.6 prescribes.
                if other.is_some() {
                    self.app.txn_abort(txn);
                }
                self.stats.txns_aborted += 1;
                self.reply_to(
                    req.id,
                    ReplyBody::TxnAborted {
                        txn,
                        reason: AbortReason::LeaderSwitch,
                    },
                    out,
                );
            }
        }
    }

    fn tpaxos_abort(&mut self, req: Request, txn: TxnId, out: &mut Vec<Action>) {
        let key = (req.id.client, txn);
        let had = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            l.txns.remove(&key).is_some()
        };
        if had {
            self.app.txn_abort(txn);
            self.stats.txns_aborted += 1;
        }
        // Aborts are answered immediately and idempotently; nothing was
        // replicated, so nothing needs coordination.
        self.reply_to(
            req.id,
            ReplyBody::TxnAborted {
                txn,
                reason: AbortReason::ClientAbort,
            },
            out,
        );
    }

    // ------------------------------------------------------------------
    // The consensus pipeline
    // ------------------------------------------------------------------

    /// Propose the next batch of queued requests if the pipeline is free.
    /// §3.3: the leader "will not propose the i-th request and the
    /// corresponding state until the (i-1)-th commits" — strict pipelining;
    /// the *batch* is one proposal, so no gaps can arise, and throughput
    /// is not capped at one request per coordination round-trip.
    fn try_propose_next(&mut self, now: Time, out: &mut Vec<Action>) {
        let batch = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            if !l.quiescent() || l.queue.is_empty() {
                return;
            }
            // Adaptive coalescing: under concurrency (the previous decree
            // carried several requests) hold the proposal briefly so the
            // whole burst of unblocked closed-loop clients lands in one
            // decree — the socket-drain batching a real server gets for
            // free. At low load (previous batch ≤ 1) propose immediately,
            // so single-client latency is exactly the paper's model.
            let window = self.cfg.batch_window;
            if l.last_batch > 1
                && window > crate::types::Dur::ZERO
                && l.queue.len() < self.cfg.max_batch
            {
                if !l.window_armed {
                    l.window_armed = true;
                    l.window_rearms = 8;
                    out.push(Action::timer(TimerKind::BatchWindow, window));
                }
                return;
            }
            let take = l.queue.len().min(self.cfg.max_batch);
            l.queue.drain(..take).collect::<Vec<_>>()
        };
        self.execute_and_propose(batch, now, out);
    }

    /// The batch window elapsed: propose everything queued, regardless of
    /// the adaptive condition.
    pub(crate) fn on_batch_window_timer(&mut self, now: Time, out: &mut Vec<Action>) {
        let batch = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            if !l.quiescent() || l.queue.is_empty() {
                l.window_armed = false;
                return;
            }
            // Still collecting a burst: while the queue has not yet reached
            // the previous batch size (and re-arms remain), wait a little
            // longer so the whole burst of unblocked clients coalesces.
            if l.queue.len() < l.last_batch.min(self.cfg.max_batch) && l.window_rearms > 0 {
                l.window_rearms -= 1;
                out.push(Action::timer(TimerKind::BatchWindow, self.cfg.batch_window));
                return;
            }
            l.window_armed = false;
            let take = l.queue.len().min(self.cfg.max_batch);
            l.queue.drain(..take).collect::<Vec<_>>()
        };
        self.execute_and_propose(batch, now, out);
    }

    fn execute_and_propose(&mut self, batch: Vec<Request>, now: Time, out: &mut Vec<Action>) {
        // Arm rollback for the tentative executions below before running
        // them. Apps with an undo log take the O(1) path; everything else
        // falls back to snapshotting committed state — O(state), which is
        // exactly the hot-path cost `tentative_begin` exists to remove.
        self.tentative = self.app.tentative_begin();
        if !self.tentative {
            self.pre_exec = Some(self.app.snapshot());
        }
        let decree = Decree {
            entries: batch
                .into_iter()
                .map(|req| self.execute_for_entry(req, now))
                .collect(),
        };

        let (ballot, instance) = {
            let Role::Leader(l) = &mut self.role else {
                // Role changed under us (cannot happen in a single-threaded
                // handler, but stay defensive). Keep the executed effects,
                // as the snapshot-drop path always has.
                self.pre_exec = None;
                if self.tentative {
                    self.tentative = false;
                    self.app.tentative_commit();
                }
                return;
            };
            let i = l.next_instance;
            l.next_instance = i.next();
            l.last_batch = decree.entries.len();
            let mut acks = HashSet::with_capacity(self.cfg.n);
            acks.insert(self.id);
            l.inflight = Some(Inflight { instance: i, acks });
            (l.ballot, i)
        };
        self.self_executed = Some(instance);
        // Self-accept durably, then ask the backups.
        self.storage.save_accepted(instance, ballot, &decree);
        self.log.record_accept(instance, ballot, decree.clone());
        out.push(Action::broadcast(Msg::Accept {
            ballot,
            entries: vec![(instance, decree)],
        }));
        out.push(Action::timer(
            TimerKind::Retransmit,
            self.cfg.retransmit_timeout,
        ));
        // A singleton group is its own majority.
        self.check_inflight_commit(now, out);
    }

    /// Execute a request and build its decree entry `⟨req, state, reply⟩`.
    fn execute_for_entry(&mut self, req: Request, now: Time) -> DecreeEntry {
        match req.txn {
            Some(TxnCtl::Op { txn }) => {
                // Per-op coordinated transaction operation: stage durably
                // and replicate the staging record.
                let mut ctx = ExecCtx::new(now, &mut self.rng);
                match self.app.txn_execute(txn, &req, true, &mut ctx) {
                    Ok((bytes, staging)) => DecreeEntry {
                        cmd: Command::Req(req),
                        update: staging,
                        reply: ReplyBody::Ok(bytes),
                    },
                    Err(reason) => DecreeEntry {
                        cmd: Command::Req(req),
                        update: StateUpdate::None,
                        reply: ReplyBody::TxnAborted { txn, reason },
                    },
                }
            }
            Some(TxnCtl::Commit { txn, .. }) => {
                let update = self.app.txn_commit(txn);
                self.stats.txns_committed += 1;
                if self.cfg.txn_mode == TxnMode::TPaxos {
                    let ops = {
                        let Role::Leader(l) = &mut self.role else {
                            unreachable!("execute_for_entry runs under leadership")
                        };
                        l.committing
                            .remove(&req.id)
                            .map(|(_, sess)| sess.ops.into_iter().map(|(r, _)| r).collect())
                            .unwrap_or_default()
                    };
                    DecreeEntry {
                        cmd: Command::TxnCommit {
                            id: req.id,
                            txn,
                            ops,
                        },
                        update,
                        reply: ReplyBody::TxnCommitted { txn },
                    }
                } else {
                    DecreeEntry {
                        cmd: Command::Req(req),
                        update,
                        reply: ReplyBody::TxnCommitted { txn },
                    }
                }
            }
            Some(TxnCtl::Abort { txn }) => {
                // Per-op mode: the staged effects were replicated, so their
                // disposal must be too.
                self.app.txn_abort(txn);
                self.stats.txns_aborted += 1;
                DecreeEntry {
                    cmd: Command::Req(req),
                    update: StateUpdate::None,
                    reply: ReplyBody::TxnAborted {
                        txn,
                        reason: AbortReason::ClientAbort,
                    },
                }
            }
            None => {
                let mut ctx = ExecCtx::new(now, &mut self.rng);
                let (bytes, update) = self.app.execute(&req, &mut ctx);
                let update = match (req.kind, self.cfg.value_mode) {
                    (RequestKind::Read, _) => {
                        debug_assert!(update.is_none(), "reads must not change state");
                        StateUpdate::None
                    }
                    // Classic baseline: ship the request only; backups
                    // re-execute (sound for deterministic services).
                    (_, ValueMode::ReqOnly) => StateUpdate::None,
                    (_, ValueMode::ReqState) => update,
                };
                if req.kind == RequestKind::Read {
                    self.stats.consensus_reads += 1;
                }
                DecreeEntry {
                    cmd: Command::Req(req),
                    update,
                    reply: ReplyBody::Ok(bytes),
                }
            }
        }
    }

    pub(crate) fn handle_accepted(
        &mut self,
        from: Addr,
        ballot: Ballot,
        instances: &[Instance],
        now: Time,
        out: &mut Vec<Action>,
    ) {
        let Some(pid) = from.as_replica() else { return };
        let majority = self.cfg.majority();
        enum Outcome {
            None,
            Inflight,
            Recovery {
                newly_chosen: Vec<Instance>,
                finished: bool,
            },
        }
        let outcome = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            if l.ballot != ballot {
                return; // stale ack for an older leadership of ours
            }
            if let Some(rec) = &mut l.recovery {
                let mut newly = Vec::new();
                for i in instances {
                    if rec.pending.contains(i) {
                        let acks = rec.acks.entry(*i).or_default();
                        acks.insert(pid);
                        if acks.len() >= majority {
                            rec.pending.remove(i);
                            newly.push(*i);
                        }
                    }
                }
                let finished = rec.pending.is_empty();
                if finished {
                    l.recovery = None;
                }
                Outcome::Recovery {
                    newly_chosen: newly,
                    finished,
                }
            } else if let Some(inf) = &mut l.inflight {
                if instances.contains(&inf.instance) {
                    inf.acks.insert(pid);
                    Outcome::Inflight
                } else {
                    Outcome::None
                }
            } else {
                Outcome::None
            }
        };
        match outcome {
            Outcome::None => {}
            Outcome::Inflight => self.check_inflight_commit(now, out),
            Outcome::Recovery {
                newly_chosen,
                finished,
            } => {
                for i in newly_chosen {
                    self.log.mark_chosen(i);
                    self.stats.commits_led += 1;
                }
                self.drain_apply(now, out);
                self.broadcast_chosen(out);
                if finished {
                    out.push(Action::CancelTimer {
                        kind: TimerKind::Retransmit,
                    });
                    self.leader_after_advance(now, out);
                }
            }
        }
    }

    fn check_inflight_commit(&mut self, now: Time, out: &mut Vec<Action>) {
        let majority = self.cfg.majority();
        let committed = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            match &l.inflight {
                Some(inf) if inf.acks.len() >= majority => {
                    let i = inf.instance;
                    l.inflight = None;
                    Some(i)
                }
                _ => None,
            }
        };
        let Some(i) = committed else { return };
        self.stats.commits_led += 1;
        out.push(Action::CancelTimer {
            kind: TimerKind::Retransmit,
        });
        self.log.mark_chosen(i);
        self.drain_apply(now, out); // replies to the client, runs after-advance
        self.broadcast_chosen(out);
    }

    fn broadcast_chosen(&mut self, out: &mut Vec<Action>) {
        let Role::Leader(l) = &self.role else { return };
        out.push(Action::broadcast(Msg::Chosen {
            ballot: l.ballot,
            upto: self.log.chosen_prefix(),
        }));
    }

    /// Called whenever the applied prefix advances under our leadership:
    /// execute reads that were deferred behind a tentative write, then
    /// start the next proposal.
    pub(crate) fn leader_after_advance(&mut self, now: Time, out: &mut Vec<Action>) {
        let pending_reads: Vec<RequestId> = {
            let Role::Leader(l) = &self.role else { return };
            if !l.quiescent() {
                return;
            }
            l.reads
                .iter()
                .filter(|(_, p)| p.result.is_none())
                .map(|(id, _)| *id)
                .collect()
        };
        // HashMap iteration order is arbitrary; execute in request order so
        // replies are deterministic for a given schedule (replay/checking).
        let mut pending_reads = pending_reads;
        pending_reads.sort_unstable();
        for id in pending_reads {
            self.execute_pending_read(id, now);
            self.check_read_complete(id, now, out);
        }
        self.try_propose_next(now, out);
    }

    // ------------------------------------------------------------------
    // Leader timers
    // ------------------------------------------------------------------

    pub(crate) fn on_heartbeat_timer(&mut self, now: Time, out: &mut Vec<Action>) {
        let chosen = self.log.chosen_prefix();
        let Role::Leader(l) = &mut self.role else {
            return;
        };
        l.hb_seq += 1;
        l.hb_sent_at = now;
        l.hb_acks.clear();
        if self.cfg.majority() == 1 {
            let lease_dur = self.cfg.lease_dur.min(self.cfg.suspect_timeout);
            l.lease_until = l.lease_until.max(now.after(lease_dur));
        }
        out.push(Action::broadcast(Msg::Heartbeat {
            ballot: l.ballot,
            chosen,
            hb_seq: l.hb_seq,
        }));
        out.push(Action::timer(
            TimerKind::Heartbeat,
            self.cfg.heartbeat_interval,
        ));
    }

    /// A follower granted us a lease vote for heartbeat `hb_seq`. A
    /// majority (counting ourselves) extends the lease to
    /// `send time + lease_dur` — anchored at the *send* time, so the lease
    /// can never outlive the followers' suspicion timeouts.
    pub(crate) fn handle_heartbeat_ack(
        &mut self,
        from: Addr,
        ballot: Ballot,
        hb_seq: u64,
        _now: Time,
    ) {
        let Some(pid) = from.as_replica() else { return };
        let majority = self.cfg.majority();
        let lease_dur = self.cfg.lease_dur.min(self.cfg.suspect_timeout);
        let Role::Leader(l) = &mut self.role else {
            return;
        };
        if l.ballot != ballot || l.hb_seq != hb_seq {
            return; // stale ack
        }
        l.hb_acks.insert(pid);
        if l.hb_acks.len() + 1 >= majority {
            l.lease_until = l.lease_until.max(l.hb_sent_at.after(lease_dur));
        }
    }

    pub(crate) fn on_retransmit_timer(&mut self, _now: Time, out: &mut Vec<Action>) {
        let (ballot, instances) = {
            let Role::Leader(l) = &self.role else { return };
            let instances: Vec<Instance> = if let Some(rec) = &l.recovery {
                rec.pending.iter().copied().collect()
            } else if let Some(inf) = &l.inflight {
                vec![inf.instance]
            } else {
                return; // nothing outstanding; do not re-arm
            };
            (l.ballot, instances)
        };
        let entries: Vec<(Instance, Decree)> = instances
            .iter()
            .filter_map(|i| self.log.get(*i).map(|(_, d)| (*i, d.clone())))
            .collect();
        if !entries.is_empty() {
            out.push(Action::broadcast(Msg::Accept { ballot, entries }));
        }
        out.push(Action::timer(
            TimerKind::Retransmit,
            self.cfg.retransmit_timeout,
        ));
    }

    // ------------------------------------------------------------------
    // Used by candidate.rs when installing the recovered batch
    // ------------------------------------------------------------------

    pub(crate) fn install_recovery_batch(
        &mut self,
        batch: BTreeMap<Instance, Decree>,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        let (ballot, entries) = {
            let Role::Leader(l) = &mut self.role else {
                return;
            };
            if batch.is_empty() {
                return;
            }
            let mut rec = RecoveryBatch::default();
            for i in batch.keys() {
                rec.pending.insert(*i);
                let mut acks = HashSet::with_capacity(self.cfg.n);
                acks.insert(self.id);
                rec.acks.insert(*i, acks);
            }
            l.recovery = Some(rec);
            (l.ballot, batch.into_iter().collect::<Vec<_>>())
        };
        let instances: Vec<Instance> = entries.iter().map(|(i, _)| *i).collect();
        for (i, d) in &entries {
            self.storage.save_accepted(*i, ballot, d);
            self.log.record_accept(*i, ballot, d.clone());
        }
        // One single accept message for the whole batch (§3.3), built by
        // moving the already-owned batch — the log keeps its own copies
        // from `record_accept` above, so no second clone of every decree.
        out.push(Action::broadcast(Msg::Accept { ballot, entries }));
        out.push(Action::timer(
            TimerKind::Retransmit,
            self.cfg.retransmit_timeout,
        ));
        // A singleton group commits immediately.
        if self.cfg.majority() == 1 {
            self.handle_accepted(Addr::Replica(self.id), ballot, &instances, now, out);
        }
    }
}
