//! Candidate-role logic: the prepare phase as leader election, and the
//! takeover computation a fresh leader runs (§3.3's recovery narrative).

use super::leader::LeaderState;
use super::{Replica, Role};
use crate::action::{Action, TimerKind};
use crate::ballot::Ballot;
use crate::command::{AcceptedEntry, Decree, SnapshotBlob};
use crate::msg::Msg;
use crate::types::{Addr, Instance, ProcessId, Time};
use std::collections::{BTreeMap, HashMap};

/// One received promise, retained until the election resolves.
#[derive(Debug)]
pub(crate) struct PromiseInfo {
    pub accepted: Vec<AcceptedEntry>,
    pub snapshot: Option<SnapshotBlob>,
}

/// State of an election in progress.
#[derive(Debug)]
pub struct CandidateState {
    /// Our ballot for this attempt.
    pub ballot: Ballot,
    /// When this attempt started (reported in traces).
    pub started: Time,
    pub(crate) promises: HashMap<ProcessId, PromiseInfo>,
}

impl Replica {
    /// Begin (or restart) an election with a ballot outbidding everything
    /// we have seen.
    pub(crate) fn start_election(&mut self, now: Time, out: &mut Vec<Action>) {
        // A sitting leader never campaigns against itself.
        if self.is_leader() {
            return;
        }
        self.stats.elections_started += 1;
        self.pacer.note_attempt();
        let ballot = self.max_ballot_seen.max(self.promised).successor(self.id);
        self.note_ballot(ballot);
        self.promised = ballot;
        self.storage.save_promised(ballot);
        self.fd.reset(now);

        self.role = Role::Candidate(CandidateState {
            ballot,
            started: now,
            promises: HashMap::new(),
        });

        // One prepare covers every open instance (§3.3): we state what we
        // already know chosen and the promisers fill in the rest.
        out.push(Action::broadcast(Msg::Prepare {
            ballot,
            chosen_prefix: self.log.chosen_prefix(),
            known_above: self.log.known_above(),
        }));
        let retry_after = self.pacer.backoff(&mut self.rng);
        out.push(Action::timer(TimerKind::Election, retry_after));

        // A singleton group: our own (implicit) promise is a majority.
        if self.cfg.majority() == 1 {
            self.become_leader(now, out);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Promise message fields
    pub(crate) fn handle_promise(
        &mut self,
        from: Addr,
        ballot: Ballot,
        chosen_prefix: Instance,
        accepted: Vec<AcceptedEntry>,
        snapshot: Option<SnapshotBlob>,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        let Some(pid) = from.as_replica() else { return };
        let majority = self.cfg.majority();
        let won = {
            let Role::Candidate(c) = &mut self.role else {
                return; // stale promise (election already resolved)
            };
            if c.ballot != ballot {
                return;
            }
            // An honest promiser's snapshot covers exactly its prefix; the
            // takeover logic below only relies on `snapshot.upto`, so no
            // assertion is needed here.
            let _ = chosen_prefix;
            c.promises.insert(pid, PromiseInfo { accepted, snapshot });
            // +1 for our own implicit promise.
            c.promises.len() + 1 >= majority
        };
        if won {
            self.become_leader(now, out);
        }
    }

    pub(crate) fn handle_prepare_nack(
        &mut self,
        ballot: Ballot,
        promised: Ballot,
        now: Time,
        out: &mut Vec<Action>,
    ) {
        self.note_ballot(promised);
        let ours = matches!(&self.role, Role::Candidate(c) if c.ballot == ballot);
        if ours {
            // Someone is bound to a higher ballot: concede this attempt and
            // wait for that leadership (or a later suspicion) instead of
            // dueling — the stability bias of §3.6.
            self.step_down(promised, now, out);
            if promised > self.promised {
                self.promised = promised;
                self.storage.save_promised(promised);
            }
        }
    }

    pub(crate) fn on_election_timer(&mut self, now: Time, out: &mut Vec<Action>) {
        if matches!(self.role, Role::Candidate(_)) {
            // The attempt timed out (lost prepares or a split vote): retry
            // with a fresh, higher ballot and a longer backoff.
            self.role = Role::Follower;
            self.start_election(now, out);
        }
    }

    /// We hold promises from a majority: compute the takeover and switch to
    /// leading.
    fn become_leader(&mut self, now: Time, out: &mut Vec<Action>) {
        let (ballot, promises) = {
            let Role::Candidate(c) = std::mem::replace(&mut self.role, Role::Follower) else {
                return;
            };
            (c.ballot, c.promises)
        };
        self.stats.elections_won += 1;
        self.pacer.settle();
        out.push(Action::CancelTimer {
            kind: TimerKind::Election,
        });

        // 1. If any promiser's chosen prefix is ahead of ours, adopt the
        //    most advanced snapshot — "the replicas are only interested in
        //    the latest state" (§3.3).
        let best = promises
            .values()
            .filter_map(|p| p.snapshot.as_ref())
            .max_by_key(|s| s.upto);
        if let Some(snap) = best {
            if snap.upto > self.log.chosen_prefix() {
                let snap = snap.clone();
                self.install_snapshot(&snap);
            }
        }
        let prefix = self.log.chosen_prefix();

        // 2. Merge accepted entries: ours plus every promiser's, keeping
        //    the highest-ballot decree per instance (the Paxos rule: a new
        //    proposal must be consistent with the existing ones of the
        //    highest ballot).
        let mut merged: BTreeMap<Instance, (Ballot, Decree)> = BTreeMap::new();
        let own = self.log.entries_above(prefix, &[]);
        for e in own
            .into_iter()
            .chain(promises.into_values().flat_map(|p| p.accepted.into_iter()))
        {
            if e.instance <= prefix {
                continue;
            }
            match merged.get(&e.instance) {
                Some((b, _)) if *b >= e.ballot => {}
                _ => {
                    merged.insert(e.instance, (e.ballot, e.decree));
                }
            }
        }

        // 3. Close the gaps: instances in (prefix, max] with no surviving
        //    proposal anywhere in our majority cannot have been chosen —
        //    fill them with no-ops.
        let max = merged.keys().next_back().copied().unwrap_or(prefix);
        let mut batch: BTreeMap<Instance, Decree> = BTreeMap::new();
        let mut i = prefix.next();
        while i <= max {
            let decree = merged
                .remove(&i)
                .map(|(_, d)| d)
                .unwrap_or_else(Decree::noop);
            batch.insert(i, decree);
            i = i.next();
        }

        let mut lead = LeaderState::new(ballot, max.next());
        lead.hb_sent_at = now;
        self.role = Role::Leader(lead);

        // 4. Re-propose the batch under our ballot with a single accept
        //    message, then start heartbeating.
        self.install_recovery_batch(batch, now, out);
        out.push(Action::broadcast(Msg::Heartbeat {
            ballot,
            chosen: self.log.chosen_prefix(),
            hb_seq: 0,
        }));
        out.push(Action::timer(
            TimerKind::Heartbeat,
            self.cfg.heartbeat_interval,
        ));
    }
}
