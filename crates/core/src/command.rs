//! Commands, decrees and state updates — the values consensus is run on.
//!
//! The key idea of the paper (§3.3): for a *nondeterministic* service the
//! value chosen by consensus instance `i` is not just the `i`-th request
//! but the tuple `⟨req, state⟩` — the request *and the leader's resulting
//! state* — so backups never have to re-execute nondeterministic code.

use crate::request::{ReplyBody, Request, RequestId};
use crate::types::{ClientId, Instance, Seq, TxnId};
use bytes::Bytes;

/// How the leader's post-execution state is shipped to the backups.
///
/// §3.3 describes both size reductions we implement:
/// shipping only the *updated* part of the state ([`StateUpdate::Delta`])
/// and shipping the request plus auxiliary information that lets replicas
/// *reproduce* the nondeterministic choice deterministically
/// ([`StateUpdate::Reproduce`], e.g. the random draw made by a randomized
/// resource broker).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StateUpdate {
    /// The request did not change service state (reads, no-ops).
    None,
    /// Complete service snapshot after executing the request.
    Full(Bytes),
    /// Service-defined incremental update.
    Delta(Bytes),
    /// Auxiliary nondeterminism record; each replica re-executes the
    /// request deterministically using it.
    Reproduce(Bytes),
}

impl StateUpdate {
    /// Size in bytes of the shipped payload (0 for `None`).
    #[must_use]
    pub fn payload_len(&self) -> usize {
        match self {
            StateUpdate::None => 0,
            StateUpdate::Full(b) | StateUpdate::Delta(b) | StateUpdate::Reproduce(b) => b.len(),
        }
    }

    /// Whether applying this update is a no-op.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, StateUpdate::None)
    }
}

/// The command half of a decree.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Command {
    /// Gap filler proposed during recovery when no live proposal exists for
    /// an instance (§3.3's new-leader narrative).
    Noop,
    /// An ordinary client request (or a per-operation-coordinated
    /// transaction request, including commits/aborts in that mode).
    Req(Request),
    /// A T-Paxos transaction commit: the only coordination point of an
    /// optimized transaction. Carries every operation of the transaction so
    /// a future leader can reconstruct replies, plus the commit request id.
    TxnCommit {
        /// The client's commit request.
        id: RequestId,
        /// Transaction being committed.
        txn: TxnId,
        /// The operations executed inside the transaction, in order.
        ops: Vec<Request>,
    },
}

impl Command {
    /// The client request id this command answers, if any.
    #[must_use]
    pub fn request_id(&self) -> Option<RequestId> {
        match self {
            Command::Noop => None,
            Command::Req(r) => Some(r.id),
            Command::TxnCommit { id, .. } => Some(*id),
        }
    }
}

/// One executed command inside a decree: `⟨command, state change, reply⟩`.
///
/// The reply is carried so that (a) the leader can answer the client after
/// commit and (b) any later leader can re-answer a retransmitted duplicate
/// without re-executing (at-most-once semantics).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DecreeEntry {
    /// What was executed.
    pub cmd: Command,
    /// The leader's state change from executing it.
    pub update: StateUpdate,
    /// The reply owed to the client.
    pub reply: ReplyBody,
}

/// The full value chosen by one consensus instance.
///
/// A decree is a *batch*: the leader executes every request that queued up
/// behind the previous instance and proposes them as one value. This keeps
/// §3.3's strict pipelining (at most one proposal outstanding, no gaps)
/// while letting throughput exceed one request per coordination round-trip
/// — without it, closed-loop write throughput would be capped at
/// `1 / (2m)` regardless of client count, far below the paper's Figure 5.
/// Entries apply in order; the state after the decree reflects all of
/// them.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Decree {
    /// Executed commands, in execution order.
    pub entries: Vec<DecreeEntry>,
}

impl Decree {
    /// The canonical no-op decree used for gap filling during recovery.
    #[must_use]
    pub fn noop() -> Decree {
        Decree {
            entries: Vec::new(),
        }
    }

    /// A decree carrying a single command.
    #[must_use]
    pub fn single(cmd: Command, update: StateUpdate, reply: ReplyBody) -> Decree {
        Decree {
            entries: vec![DecreeEntry { cmd, update, reply }],
        }
    }

    /// Whether this decree answers the given request id.
    #[must_use]
    pub fn answers(&self, id: RequestId) -> bool {
        self.entries.iter().any(|e| e.cmd.request_id() == Some(id))
    }
}

/// An entry a replica has *accepted* (but not necessarily learned chosen)
/// for some instance. Shipped inside `Promise` messages during recovery.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AcceptedEntry {
    /// The instance.
    pub instance: Instance,
    /// Ballot under which the decree was accepted.
    pub ballot: crate::ballot::Ballot,
    /// The decree itself.
    pub decree: Decree,
}

/// One row of the at-most-once deduplication table: the last executed
/// sequence number and reply for a client.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DedupEntry {
    /// The client.
    pub client: ClientId,
    /// Highest executed sequence number for that client.
    pub seq: Seq,
    /// Reply produced for it.
    pub reply: ReplyBody,
}

/// A complete, self-contained snapshot of replica service state as of a
/// given instance: the application state plus the dedup table. Shipped in
/// promises (when the promiser is ahead of the candidate), in catch-up
/// transfers to lagging replicas, and written as periodic checkpoints.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SnapshotBlob {
    /// All instances `<= upto` are reflected in `app`.
    pub upto: Instance,
    /// Opaque application snapshot ([`crate::service::App::snapshot`]).
    pub app: Bytes,
    /// Deduplication table as of `upto`.
    pub dedup: Vec<DedupEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;
    use crate::types::*;

    #[test]
    fn state_update_sizes() {
        assert_eq!(StateUpdate::None.payload_len(), 0);
        assert!(StateUpdate::None.is_none());
        assert_eq!(
            StateUpdate::Full(Bytes::from_static(b"abcd")).payload_len(),
            4
        );
        assert_eq!(
            StateUpdate::Delta(Bytes::from_static(b"ab")).payload_len(),
            2
        );
        assert!(!StateUpdate::Delta(Bytes::new()).is_none());
    }

    #[test]
    fn command_request_ids() {
        assert_eq!(Command::Noop.request_id(), None);
        let rid = RequestId::new(ClientId(4), Seq(2));
        let req = Request::new(rid, RequestKind::Write, Bytes::new());
        assert_eq!(Command::Req(req).request_id(), Some(rid));
        let commit = Command::TxnCommit {
            id: rid,
            txn: TxnId(1),
            ops: vec![],
        };
        assert_eq!(commit.request_id(), Some(rid));
    }

    #[test]
    fn noop_decree_is_empty() {
        let d = Decree::noop();
        assert!(d.entries.is_empty());
        assert!(!d.answers(RequestId::new(ClientId(1), Seq(1))));
    }

    #[test]
    fn decree_answers_matching_request() {
        let rid = RequestId::new(ClientId(4), Seq(2));
        let req = Request::new(rid, RequestKind::Write, Bytes::new());
        let d = Decree::single(
            Command::Req(req),
            StateUpdate::None,
            ReplyBody::Ok(Bytes::new()),
        );
        assert!(d.answers(rid));
        assert!(!d.answers(RequestId::new(ClientId(4), Seq(3))));
    }
}
