//! Client-visible request and reply types.
//!
//! The evaluation in §4 of the paper distinguishes three request kinds —
//! *read* (does not change service state, coordinated with X-Paxos),
//! *write* (changes state, coordinated with the basic protocol) and
//! *original* (sent to an unreplicated service; the leader replies without
//! any coordination). We model all three so the benchmark harness can
//! regenerate every figure.

use crate::types::{ClientId, ProcessId, Seq, TxnId};
use bytes::Bytes;
use std::fmt;

/// Globally unique identity of a client request: `(client, seq)`.
///
/// Clients number their requests sequentially, which makes retransmission
/// idempotent: replicas remember the last reply per client and resend it
/// when they see a duplicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local sequence number.
    pub seq: Seq,
}

impl RequestId {
    /// Construct a request id.
    #[must_use]
    pub fn new(client: ClientId, seq: Seq) -> RequestId {
        RequestId { client, seq }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq.0)
    }
}

/// Classification of a request, as in §4's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RequestKind {
    /// Does not change service state. Eligible for the X-Paxos fast path.
    Read,
    /// Changes service state. Always coordinated with the basic protocol.
    Write,
    /// Baseline: executed by the leader with an immediate reply and **no
    /// coordination**. Models the paper's unreplicated "original" service.
    /// Unsafe for stateful services — used only by the benchmark harness.
    Original,
}

impl RequestKind {
    /// Whether this request may mutate service state.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, RequestKind::Write)
    }
}

/// Transaction control attached to a request (T-Paxos, §3.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TxnCtl {
    /// This request is an operation inside transaction `txn`.
    Op {
        /// The enclosing transaction.
        txn: TxnId,
    },
    /// Commit `txn`. `n_ops` is the number of operations the client issued
    /// inside the transaction; a leader whose session does not hold exactly
    /// that many staged operations (e.g. because it took over mid-
    /// transaction) must abort — this is how §3.6's "leader switch aborts
    /// the transaction" rule is enforced.
    Commit {
        /// The transaction being committed.
        txn: TxnId,
        /// Operation count the leader's session must match.
        n_ops: u32,
    },
    /// Abort `txn`, discarding all staged effects.
    Abort {
        /// The transaction being aborted.
        txn: TxnId,
    },
}

impl TxnCtl {
    /// The transaction this control message refers to.
    #[must_use]
    pub fn txn(self) -> TxnId {
        match self {
            TxnCtl::Op { txn } | TxnCtl::Commit { txn, .. } | TxnCtl::Abort { txn } => txn,
        }
    }

    /// Whether this is a commit.
    #[must_use]
    pub fn is_commit(self) -> bool {
        matches!(self, TxnCtl::Commit { .. })
    }
}

/// A client request.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Request {
    /// Unique identity; duplicates (retransmissions) carry the same id.
    pub id: RequestId,
    /// Read / write / original classification.
    pub kind: RequestKind,
    /// Transaction context, if the client is using transactions.
    pub txn: Option<TxnCtl>,
    /// Opaque service-level operation, interpreted by the [`crate::service::App`].
    pub op: Bytes,
}

impl Request {
    /// A plain (non-transactional) request.
    #[must_use]
    pub fn new(id: RequestId, kind: RequestKind, op: Bytes) -> Request {
        Request {
            id,
            kind,
            txn: None,
            op,
        }
    }

    /// An operation inside a transaction.
    #[must_use]
    pub fn txn_op(id: RequestId, kind: RequestKind, txn: TxnId, op: Bytes) -> Request {
        Request {
            id,
            kind,
            txn: Some(TxnCtl::Op { txn }),
            op,
        }
    }

    /// A transaction commit request.
    #[must_use]
    pub fn txn_commit(id: RequestId, txn: TxnId, n_ops: u32) -> Request {
        Request {
            id,
            kind: RequestKind::Write,
            txn: Some(TxnCtl::Commit { txn, n_ops }),
            op: Bytes::new(),
        }
    }

    /// A transaction abort request.
    #[must_use]
    pub fn txn_abort(id: RequestId, txn: TxnId) -> Request {
        Request {
            id,
            kind: RequestKind::Write,
            txn: Some(TxnCtl::Abort { txn }),
            op: Bytes::new(),
        }
    }

    /// Whether this request is a transaction operation (not commit/abort).
    #[must_use]
    pub fn is_txn_op(&self) -> bool {
        matches!(self.txn, Some(TxnCtl::Op { .. }))
    }
}

/// Why a transaction was aborted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AbortReason {
    /// The client asked for the abort.
    ClientAbort,
    /// The leader changed mid-transaction, so staged effects were lost
    /// (T-Paxos is sensitive to leader switches, §3.6).
    LeaderSwitch,
    /// The service detected a conflict with a concurrent transaction
    /// (§3.5: services supporting transactions need locks or similar).
    Conflict,
    /// The service does not support transactions.
    Unsupported,
}

/// Body of a reply from the leader to a client.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ReplyBody {
    /// Successful execution; opaque service-level result.
    Ok(Bytes),
    /// The transaction committed.
    TxnCommitted {
        /// The committed transaction.
        txn: TxnId,
    },
    /// The transaction aborted.
    TxnAborted {
        /// The aborted transaction.
        txn: TxnId,
        /// Why it aborted.
        reason: AbortReason,
    },
    /// Filler for decrees that carry no client reply (e.g. no-ops chosen
    /// to close log gaps during recovery).
    Empty,
    /// Overload shed: the node's admission gate refused the request before
    /// it reached the protocol (extension — reactor transport
    /// backpressure). The request was **not** executed and left no trace
    /// in the dedup table; the client should back off and retry.
    Busy,
}

impl ReplyBody {
    /// The service-level payload, if this is a plain `Ok` reply.
    #[must_use]
    pub fn payload(&self) -> Option<&Bytes> {
        match self {
            ReplyBody::Ok(b) => Some(b),
            _ => None,
        }
    }

    /// Whether the reply signals a committed transaction.
    #[must_use]
    pub fn is_committed(&self) -> bool {
        matches!(self, ReplyBody::TxnCommitted { .. })
    }

    /// Whether the reply is an overload shed (the request was not
    /// executed; retry after a backoff).
    #[must_use]
    pub fn is_busy(&self) -> bool {
        matches!(self, ReplyBody::Busy)
    }
}

/// A reply, as delivered to the client by the leader.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Reply {
    /// The request this reply answers.
    pub id: RequestId,
    /// The leader that produced the reply (lets clients learn the leader).
    pub leader: ProcessId,
    /// Result.
    pub body: ReplyBody,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::*;

    fn rid(c: u64, s: u64) -> RequestId {
        RequestId::new(ClientId(c), Seq(s))
    }

    #[test]
    fn request_constructors_classify() {
        let r = Request::new(rid(1, 1), RequestKind::Read, Bytes::from_static(b"x"));
        assert!(!r.kind.is_write());
        assert!(r.txn.is_none());

        let w = Request::txn_op(rid(1, 2), RequestKind::Write, TxnId(9), Bytes::new());
        assert!(w.is_txn_op());
        assert_eq!(w.txn.unwrap().txn(), TxnId(9));

        let c = Request::txn_commit(rid(1, 3), TxnId(9), 3);
        assert!(c.txn.unwrap().is_commit());
        assert!(!c.is_txn_op());

        let a = Request::txn_abort(rid(1, 4), TxnId(9));
        assert_eq!(a.txn.unwrap().txn(), TxnId(9));
        assert!(!a.txn.unwrap().is_commit());
    }

    #[test]
    fn request_ids_order_by_client_then_seq() {
        assert!(rid(1, 5) < rid(2, 1));
        assert!(rid(1, 1) < rid(1, 2));
    }

    #[test]
    fn reply_body_projections() {
        let ok = ReplyBody::Ok(Bytes::from_static(b"hi"));
        assert_eq!(ok.payload().unwrap().as_ref(), b"hi");
        assert!(!ok.is_committed());
        let committed = ReplyBody::TxnCommitted { txn: TxnId(1) };
        assert!(committed.is_committed());
        assert!(committed.payload().is_none());
        assert!(ReplyBody::Empty.payload().is_none());
    }

    #[test]
    fn original_kind_is_not_write_class() {
        // "Original" bypasses coordination entirely; it must not be treated
        // as a write by the protocol dispatch.
        assert!(!RequestKind::Original.is_write());
        assert!(RequestKind::Write.is_write());
    }
}
