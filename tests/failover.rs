//! Failure-handling integration tests: leader crashes, replica recovery,
//! catch-up, and T-Paxos leader-switch semantics (§3.6).

use bytes::Bytes;
use gridpaxos::core::prelude::*;
use gridpaxos::simnet::workload::{OpLoop, TxnLoop};
use gridpaxos::simnet::{SimOpts, Topology, World};

const START: Time = Time(200_000_000);
const DEADLINE: Time = Time(3_600_000_000_000);

fn world(seed: u64, cfg: Config) -> World {
    let opts = SimOpts::for_topology(Topology::sysnet(cfg.n), seed);
    World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())))
}

fn settle_and_check(w: &mut World) {
    let settle = w.now.after(Dur::from_secs(2));
    w.run_until(settle);
    let states = w.replica_states();
    assert!(
        states.windows(2).all(|p| p[0] == p[1]),
        "replica states diverged"
    );
}

#[test]
fn leader_crash_mid_workload_loses_nothing() {
    let mut w = world(1, Config::cluster(3));
    for _ in 0..4 {
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 5000)), None, START);
    }
    w.crash_at(ProcessId(0), Time(Dur::from_millis(600).0));
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 20_000);
    assert_ne!(w.leader(), Some(ProcessId(0)), "someone else leads now");
    settle_and_check(&mut w);
}

#[test]
fn reads_survive_leader_crash() {
    let mut w = world(2, Config::cluster(3));
    for _ in 0..4 {
        w.add_client(Box::new(OpLoop::new(RequestKind::Read, 5000)), None, START);
    }
    w.crash_at(ProcessId(0), Time(Dur::from_millis(500).0));
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 20_000);
}

#[test]
fn crashed_leader_recovers_as_follower_and_catches_up() {
    let mut w = world(3, Config::cluster(3));
    for _ in 0..2 {
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 8000)), None, START);
    }
    w.crash_at(ProcessId(0), Time(Dur::from_millis(500).0));
    w.recover_at(ProcessId(0), Time(Dur::from_secs(2).0));
    assert!(w.run_to_completion(DEADLINE));
    settle_and_check(&mut w);
    // The recovered replica is back and fully caught up.
    let r0 = w.replica(ProcessId(0)).expect("r0 is up");
    let leader = w.leader().expect("stable leader");
    assert_eq!(
        r0.chosen_prefix(),
        w.replica(leader).unwrap().chosen_prefix()
    );
}

#[test]
fn double_leader_crash_is_survived() {
    let mut w = world(4, Config::cluster(3));
    for _ in 0..4 {
        w.add_client(
            Box::new(OpLoop::new(RequestKind::Write, 10_000)),
            None,
            START,
        );
    }
    // Crash the bootstrap leader, then whoever is likely to succeed it.
    w.crash_at(ProcessId(0), Time(Dur::from_millis(500).0));
    w.recover_at(ProcessId(0), Time(Dur::from_millis(1500).0));
    w.crash_at(ProcessId(1), Time(Dur::from_millis(2500).0));
    w.recover_at(ProcessId(1), Time(Dur::from_millis(3500).0));
    w.crash_at(ProcessId(2), Time(Dur::from_millis(4500).0));
    w.recover_at(ProcessId(2), Time(Dur::from_millis(5500).0));
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 40_000);
    settle_and_check(&mut w);
}

#[test]
fn tpaxos_mid_transaction_leader_switch_aborts_then_retry_commits() {
    let cfg = Config::cluster(3).with_txn_mode(TxnMode::TPaxos);
    let mut w = {
        let opts = SimOpts::for_topology(Topology::sysnet(3), 5);
        World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())))
    };
    // Long-running transaction traffic spanning the crash.
    for _ in 0..4 {
        w.add_client(
            Box::new(TxnLoop::new(TxnScript::write_only(5), 2000)),
            None,
            START,
        );
    }
    // Two leader switches: with transactions continuously in flight, at
    // least one is overwhelmingly likely to be caught mid-session.
    w.crash_at(ProcessId(0), Time(Dur::from_millis(1000).0));
    w.recover_at(ProcessId(0), Time(Dur::from_millis(2000).0));
    w.crash_at(ProcessId(2), Time(Dur::from_millis(3000).0));
    assert!(w.run_to_completion(DEADLINE));
    // Every targeted transaction eventually committed...
    assert_eq!(w.metrics.txn_commits, 8000);
    // ...but the switch aborted at least one in-flight transaction
    // (T-Paxos's §3.6 sensitivity).
    assert!(
        w.metrics.txn_aborts >= 1,
        "expected at least one LeaderSwitch abort, got {}",
        w.metrics.txn_aborts
    );
    settle_and_check(&mut w);
}

#[test]
fn perop_transactions_are_insensitive_to_leader_switches() {
    // Per-operation coordination replicates staged effects, so a leader
    // switch mid-transaction does NOT force an abort — the contrast the
    // paper draws in §3.6.
    let cfg = Config::cluster(3).with_txn_mode(TxnMode::PerOp);
    let mut w = {
        let opts = SimOpts::for_topology(Topology::sysnet(3), 6);
        World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())))
    };
    for _ in 0..4 {
        w.add_client(
            Box::new(TxnLoop::new(TxnScript::write_only(5), 500)),
            None,
            START,
        );
    }
    w.crash_at(ProcessId(0), Time(Dur::from_millis(700).0));
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.txn_commits, 2000);
    assert_eq!(
        w.metrics.txn_aborts, 0,
        "per-op transactions must survive the switch"
    );
    settle_and_check(&mut w);
}

#[test]
fn fresh_replica_joining_catches_up_via_snapshot_after_checkpoint() {
    // Checkpointing truncates the log, so a replica that was down for long
    // must be served a snapshot, not log entries.
    let cfg = Config::cluster(3).with_checkpoint_every(64);
    let mut w = {
        let opts = SimOpts::for_topology(Topology::sysnet(3), 7);
        World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())))
    };
    w.add_client(Box::new(OpLoop::new(RequestKind::Write, 3000)), None, START);
    w.crash_at(ProcessId(2), Time(Dur::from_millis(300).0));
    w.recover_at(ProcessId(2), Time(Dur::from_millis(1200).0));
    assert!(w.run_to_completion(DEADLINE));
    settle_and_check(&mut w);
    let leader = w.leader().expect("leader");
    assert!(
        w.replica(leader).unwrap().stats.catchups_served > 0,
        "the leader must have served catch-up"
    );
}

#[test]
fn minority_crash_in_five_replica_group_is_transparent() {
    let mut w = world(8, Config::cluster(5));
    for _ in 0..2 {
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 3000)), None, START);
    }
    w.crash_at(ProcessId(3), Time(Dur::from_millis(400).0));
    w.crash_at(ProcessId(4), Time(Dur::from_millis(500).0));
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 6000);
}

#[test]
fn sharded_group_leader_crash_is_isolated_to_its_group() {
    // Four consensus groups over three nodes; group g's bootstrap leader
    // is node g mod 3, so crashing node 0 decapitates groups 0 and 3 while
    // groups 1 and 2 keep their leaders on the surviving nodes.
    let n_groups = 4usize;
    let router = ShardRouter::new(|req: &Request| req.op.first().map(|b| u64::from(*b)));
    let opts = SimOpts::for_topology(Topology::sysnet(3), 10);
    let mut w = World::new_sharded(
        Config::cluster(3),
        opts,
        Box::new(|| Box::new(NoopApp::new())),
        n_groups,
        Some(router),
    );
    for g in 0..n_groups as u8 {
        for _ in 0..2 {
            w.add_client(
                Box::new(OpLoop::with_payload(
                    RequestKind::Write,
                    4000,
                    Bytes::from(vec![g]),
                )),
                None,
                START,
            );
        }
    }
    let crash = Time(Dur::from_millis(600).0);
    w.crash_at(ProcessId(0), crash);

    // Just inside the suspect window after the crash: group 0 has no
    // leader yet, but the groups led by surviving nodes keep choosing.
    w.run_until(crash);
    let chosen_at_crash: Vec<_> = (1..3u32)
        .map(|g| {
            w.group_replica(ProcessId(1), GroupId(g))
                .unwrap()
                .chosen_prefix()
        })
        .collect();
    w.run_until(Time(crash.0 + Dur::from_millis(30).0));
    assert_eq!(
        w.leader_of(GroupId(0)),
        None,
        "group 0 is leaderless during the suspect window"
    );
    for (i, g) in (1..3u32).enumerate() {
        let chosen = w
            .group_replica(ProcessId(1), GroupId(g))
            .unwrap()
            .chosen_prefix();
        assert!(
            chosen > chosen_at_crash[i],
            "group {g} kept serving through the crash"
        );
    }

    // The decapitated groups re-elect and the whole workload completes.
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 4 * 2 * 4000);
    assert_ne!(w.leader_of(GroupId(0)), Some(ProcessId(0)));
    assert_ne!(w.leader_of(GroupId(3)), Some(ProcessId(0)));
    assert_eq!(
        w.leader_of(GroupId(1)),
        Some(ProcessId(1)),
        "undisturbed group keeps its leader"
    );
    assert_eq!(
        w.leader_of(GroupId(2)),
        Some(ProcessId(2)),
        "undisturbed group keeps its leader"
    );
    // Per-group convergence across the surviving nodes.
    let settle = w.now.after(Dur::from_secs(2));
    w.run_until(settle);
    for g in 0..n_groups as u32 {
        let states = w.replica_states_of(GroupId(g));
        assert!(
            states.windows(2).all(|p| p[0] == p[1]),
            "group {g} diverged"
        );
    }
}

#[test]
fn majority_crash_stalls_until_recovery() {
    let mut w = world(9, Config::cluster(3));
    w.add_client(
        Box::new(OpLoop::new(RequestKind::Write, 50_000)),
        None,
        START,
    );
    // Take down a majority shortly after start...
    w.crash_at(ProcessId(1), Time(Dur::from_millis(400).0));
    w.crash_at(ProcessId(2), Time(Dur::from_millis(400).0));
    // ...confirm no progress while down...
    w.run_until(Time(Dur::from_secs(3).0));
    let stalled_at = w.metrics.completed_ops;
    w.run_until(Time(Dur::from_secs(5).0));
    assert!(
        w.metrics.completed_ops <= stalled_at + 1,
        "no commits without a majority"
    );
    // ...and that recovery resumes service.
    w.recover_at(ProcessId(1), Time(Dur::from_secs(5).0));
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 50_000);
    settle_and_check(&mut w);
}
