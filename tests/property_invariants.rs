//! Property-based tests on core data structures and invariants:
//! the replica log, time arithmetic, statistics, and the
//! execute-on-leader / apply-on-backup convergence contract of every
//! bundled service.

use bytes::Bytes;
use gridpaxos::core::ballot::Ballot;
use gridpaxos::core::command::Decree;
use gridpaxos::core::log::ReplicaLog;
use gridpaxos::core::prelude::*;
use gridpaxos::core::request::RequestId;
use gridpaxos::core::service::{App, ExecCtx};
use gridpaxos::services::{Broker, BrokerOp, KvOp, KvStore, SchedOp, Scheduler};
use gridpaxos::simnet::{summarize, LatencyModel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// ReplicaLog invariants
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum LogOp {
    Accept(u64, u64),
    MarkChosen(u64),
    DrainApply,
    Truncate(u64),
}

fn arb_log_op() -> impl Strategy<Value = LogOp> {
    prop_oneof![
        (1u64..30, 1u64..4).prop_map(|(i, b)| LogOp::Accept(i, b)),
        (1u64..30).prop_map(LogOp::MarkChosen),
        Just(LogOp::DrainApply),
        (1u64..30).prop_map(LogOp::Truncate),
    ]
}

proptest! {
    #[test]
    fn log_invariants_hold_under_arbitrary_operations(
        ops in proptest::collection::vec(arb_log_op(), 1..80)
    ) {
        let mut log = ReplicaLog::new();
        let mut last_prefix = Instance::ZERO;
        let mut truncated_below = Instance::ZERO;
        for op in ops {
            match op {
                LogOp::Accept(i, b) => {
                    let i = Instance(i);
                    if i > log.chosen_prefix() {
                        log.record_accept(i, Ballot::new(b, ProcessId(0)), Decree::noop());
                    }
                }
                LogOp::MarkChosen(i) => {
                    let i = Instance(i);
                    // mark_chosen requires an entry (handlers guarantee it).
                    if i > log.chosen_prefix() && log.get(i).is_some() && i > truncated_below {
                        log.mark_chosen(i);
                    }
                }
                LogOp::DrainApply => {
                    while let Some((i, _)) = log.next_applicable().map(|(i, d)| (i, d.clone())) {
                        log.advance_applied(i);
                    }
                }
                LogOp::Truncate(i) => {
                    let i = Instance(i);
                    if i <= log.chosen_prefix() {
                        log.truncate_upto(i);
                        truncated_below = truncated_below.max(i);
                    }
                }
            }
            // Invariant: the prefix never regresses.
            prop_assert!(log.chosen_prefix() >= last_prefix);
            last_prefix = log.chosen_prefix();
            // Invariant: everything at or below the prefix reads as chosen.
            prop_assert!(log.is_known_chosen(log.chosen_prefix()));
            // Invariant: known_above never reports the contiguous prefix.
            for k in log.known_above() {
                prop_assert!(k > log.chosen_prefix());
                prop_assert!(log.get(k).is_some(), "chosen-known implies logged");
            }
            // Invariant: next_applicable is exactly prefix+1 when present.
            if let Some((i, _)) = log.next_applicable() {
                prop_assert_eq!(i, log.chosen_prefix().next());
            }
        }
    }

    #[test]
    fn log_chosen_range_is_contiguous_and_complete(
        upto in 1u64..40,
        have in 0u64..40,
    ) {
        let mut log = ReplicaLog::new();
        for i in 1..=upto {
            log.record_accept(Instance(i), Ballot::new(1, ProcessId(0)), Decree::noop());
            log.mark_chosen(Instance(i));
        }
        while let Some((i, _)) = log.next_applicable().map(|(i, d)| (i, d.clone())) {
            log.advance_applied(i);
        }
        let have = Instance(have);
        match log.chosen_range(have, Instance(upto)) {
            Some(entries) => {
                // An empty range (have >= upto) is legitimately Some(vec![]).
                prop_assert_eq!(entries.len() as u64, upto.saturating_sub(have.0));
                for (k, (i, _)) in entries.iter().enumerate() {
                    prop_assert_eq!(i.0, have.0 + 1 + k as u64);
                }
            }
            None => prop_assert!(
                false,
                "a fully-chosen log must serve any catch-up range"
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Time arithmetic and ballot ordering
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn time_arithmetic_never_underflows(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (Time(a), Time(b));
        let d = ta.since(tb);
        prop_assert!(d == Dur::ZERO || a > b);
        // after() is monotone.
        prop_assert!(tb.after(d) >= tb);
    }

    #[test]
    fn ballot_successor_dominates_everything_seen(
        rounds in proptest::collection::vec((0u64..1000, 0u32..8), 1..20),
        me in 0u32..8,
    ) {
        let seen: Vec<Ballot> = rounds
            .into_iter()
            .map(|(r, p)| Ballot::new(r, ProcessId(p)))
            .collect();
        let max = seen.iter().copied().max().unwrap();
        let succ = max.successor(ProcessId(me));
        for b in &seen {
            prop_assert!(succ > *b, "{succ:?} must outbid {b:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Statistics invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn summary_orderings_hold(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let s = summarize(&values);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert!(s.ci99 >= 0.0 && s.std >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    #[test]
    fn latency_samples_respect_model_bounds(
        lo in 0.1f64..10.0,
        spread in 0.0f64..10.0,
        seed in any::<u64>(),
    ) {
        let hi = lo + spread;
        let m = LatencyModel::Uniform { lo, hi };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let d = m.sample(&mut rng).as_millis_f64();
            prop_assert!(d >= lo - 1e-9 && d <= hi + 1e-9, "{d} outside [{lo},{hi}]");
        }
    }
}

// ---------------------------------------------------------------------
// Service execute/apply convergence (the heart of the paper's protocol)
// ---------------------------------------------------------------------

/// Run an op stream through a leader and a backup with *different* RNG
/// seeds; the backup applies the leader's updates and must converge.
fn converges<A: App + Clone + PartialEq + std::fmt::Debug>(
    mut leader: A,
    mut backup: A,
    ops: Vec<(RequestKind, Bytes)>,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut leader_rng = SmallRng::seed_from_u64(seed);
    for (k, (kind, op)) in ops.into_iter().enumerate() {
        let req = gridpaxos::core::request::Request::new(
            RequestId::new(ClientId(1), Seq(k as u64 + 1)),
            kind,
            op,
        );
        let mut ctx = ExecCtx::new(Time(k as u64 * 1_000_000), &mut leader_rng);
        let (_, update) = leader.execute(&req, &mut ctx);
        if kind == RequestKind::Read {
            prop_assert!(update.is_none(), "reads must not produce updates");
        }
        backup.apply(&req, &update);
    }
    prop_assert_eq!(&backup, &leader, "backup must converge on the leader");
    // And the snapshot/restore path agrees with direct application.
    let mut restored = backup.clone();
    restored.restore(&leader.snapshot());
    prop_assert_eq!(&restored, &leader);
    Ok(())
}

fn arb_kv_ops() -> impl Strategy<Value = Vec<(RequestKind, Bytes)>> {
    proptest::collection::vec(
        prop_oneof![
            ("[a-d]", "[x-z]{0,3}")
                .prop_map(|(k, v)| (RequestKind::Write, KvOp::Put(k, v).encode())),
            "[a-d]".prop_map(|k| (RequestKind::Write, KvOp::Del(k).encode())),
            ("[a-d]", -5i64..5).prop_map(|(k, d)| (RequestKind::Write, KvOp::Add(k, d).encode())),
            "[a-d]".prop_map(|k| (RequestKind::Read, KvOp::Get(k).encode())),
        ],
        1..40,
    )
}

fn arb_broker_ops() -> impl Strategy<Value = Vec<(RequestKind, Bytes)>> {
    proptest::collection::vec(
        prop_oneof![
            ("[a-c]", 1u32..5).prop_map(|(n, c)| {
                (
                    RequestKind::Write,
                    BrokerOp::AddResource {
                        name: n,
                        capacity: c,
                    }
                    .encode(),
                )
            }),
            (0u64..10, 1u32..3).prop_map(|(t, u)| {
                (
                    RequestKind::Write,
                    BrokerOp::Request { task: t, units: u }.encode(),
                )
            }),
            (0u64..10).prop_map(|t| (RequestKind::Write, BrokerOp::Release { task: t }.encode())),
            Just((RequestKind::Read, BrokerOp::FreeUnits.encode())),
        ],
        1..40,
    )
}

fn arb_sched_ops() -> impl Strategy<Value = Vec<(RequestKind, Bytes)>> {
    proptest::collection::vec(
        prop_oneof![
            ("[a-b]", 1u32..4).prop_map(|(n, sl)| {
                (
                    RequestKind::Write,
                    SchedOp::AddMachine { name: n, slots: sl }.encode(),
                )
            }),
            (0u64..12, 0u32..5).prop_map(|(j, p)| {
                (
                    RequestKind::Write,
                    SchedOp::Submit {
                        job: j,
                        priority: p,
                    }
                    .encode(),
                )
            }),
            Just((RequestKind::Write, SchedOp::Dispatch.encode())),
            (0u64..12).prop_map(|j| (RequestKind::Write, SchedOp::Complete { job: j }.encode())),
            Just((RequestKind::Read, SchedOp::QueueLen.encode())),
        ],
        1..40,
    )
}

proptest! {
    #[test]
    fn kvstore_backup_converges(ops in arb_kv_ops(), seed in any::<u64>()) {
        converges(KvStore::new(), KvStore::new(), ops, seed)?;
    }

    #[test]
    fn broker_backup_converges(ops in arb_broker_ops(), seed in any::<u64>()) {
        // The broker's whole point: its randomized decisions would diverge
        // without the Reproduce updates.
        converges(Broker::new(), Broker::new(), ops, seed)?;
    }

    #[test]
    fn scheduler_backup_converges(ops in arb_sched_ops(), seed in any::<u64>()) {
        // Timing-dependent decisions ship as deltas; a backup with a
        // different clock still converges.
        converges(Scheduler::new(), Scheduler::new(), ops, seed)?;
    }
}

// ---------------------------------------------------------------------
// KvStore transactional staging and locking invariants
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum TxnStep {
    Write(u8, String, String), // txn slot, key, value
    Read(u8, String),
    Commit(u8),
    Abort(u8),
}

fn arb_txn_steps() -> impl Strategy<Value = Vec<TxnStep>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..3, "[a-c]", "[x-z]{1,2}").prop_map(|(t, k, v)| TxnStep::Write(t, k, v)),
            (0u8..3, "[a-c]").prop_map(|(t, k)| TxnStep::Read(t, k)),
            (0u8..3).prop_map(TxnStep::Commit),
            (0u8..3).prop_map(TxnStep::Abort),
        ],
        1..60,
    )
}

proptest! {
    /// Random interleavings of up to three transactions, in both staging
    /// modes: locks must serialize conflicting writers, committed state
    /// must reflect exactly the committed transactions, and a leader and a
    /// backup (mirroring the replicated updates) must converge.
    #[test]
    fn kv_txn_interleavings_preserve_isolation(
        steps in arb_txn_steps(),
        durable in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut leader = KvStore::new();
        let mut backup = KvStore::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Per-slot session state: live txn id and staged ops count.
        let mut live: [Option<(TxnId, u32)>; 3] = [None, None, None];
        let mut next_txn = 1u64;
        let mut seq = 0u64;

        for step in steps {
            seq += 1;
            let id = RequestId::new(ClientId(1), Seq(seq));
            match step {
                TxnStep::Write(slot, key, value) => {
                    let (txn, count) = match &mut live[slot as usize] {
                        Some(s) => (s.0, &mut s.1),
                        None => {
                            let t = TxnId(next_txn);
                            next_txn += 1;
                            leader.txn_begin(t);
                            live[slot as usize] = Some((t, 0));
                            let s = live[slot as usize].as_mut().unwrap();
                            (s.0, &mut s.1)
                        }
                    };
                    let req = gridpaxos::core::request::Request::txn_op(
                        id,
                        RequestKind::Write,
                        txn,
                        KvOp::Put(key.clone(), value).encode(),
                    );
                    let mut ctx = ExecCtx::new(Time(seq), &mut rng);
                    match leader.txn_execute(txn, &req, durable, &mut ctx) {
                        Ok((_, update)) => {
                            *count += 1;
                            if durable {
                                prop_assert!(
                                    !update.is_none(),
                                    "durable staging must replicate"
                                );
                                backup.apply(&req, &update);
                            } else {
                                prop_assert!(
                                    update.is_none(),
                                    "volatile staging must not replicate"
                                );
                            }
                        }
                        Err(reason) => {
                            // Only lock conflicts are legal refusals, and a
                            // conflict implies another live txn exists.
                            prop_assert_eq!(reason, AbortReason::Conflict);
                            let others = live
                                .iter()
                                .enumerate()
                                .filter(|(i, s)| *i != slot as usize && s.is_some())
                                .count();
                            prop_assert!(others > 0, "conflict without a rival");
                        }
                    }
                }
                TxnStep::Read(slot, key) => {
                    if let Some((txn, _)) = live[slot as usize] {
                        let req = gridpaxos::core::request::Request::txn_op(
                            id,
                            RequestKind::Read,
                            txn,
                            KvOp::Get(key).encode(),
                        );
                        let mut ctx = ExecCtx::new(Time(seq), &mut rng);
                        let got = leader.txn_execute(txn, &req, durable, &mut ctx);
                        prop_assert!(got.is_ok(), "reads never conflict");
                        prop_assert!(got.unwrap().1.is_none(), "reads never stage");
                    }
                }
                TxnStep::Commit(slot) => {
                    if let Some((txn, n)) = live[slot as usize].take() {
                        let update = leader.txn_commit(txn);
                        if n == 0 {
                            prop_assert!(update.is_none(), "empty txn commits to nothing");
                        }
                        let commit_req = gridpaxos::core::request::Request::txn_commit(id, txn, n);
                        if durable {
                            backup.apply(&commit_req, &update);
                        } else {
                            backup.apply_txn_commit(txn, &[], &update);
                        }
                    }
                }
                TxnStep::Abort(slot) => {
                    if let Some((txn, _)) = live[slot as usize].take() {
                        leader.txn_abort(txn);
                        if durable {
                            // Replicated staging is discarded through a
                            // coordinated abort request.
                            let abort_req =
                                gridpaxos::core::request::Request::txn_abort(id, txn);
                            backup.apply(
                                &abort_req,
                                &gridpaxos::core::command::StateUpdate::None,
                            );
                        }
                    }
                }
            }
        }
        // Close every open transaction by aborting; nothing staged leaks.
        for slot in live.iter_mut() {
            if let Some((txn, _)) = slot.take() {
                seq += 1;
                leader.txn_abort(txn);
                if durable {
                    let abort_req = gridpaxos::core::request::Request::txn_abort(
                        RequestId::new(ClientId(1), Seq(seq)),
                        txn,
                    );
                    backup.apply(&abort_req, &gridpaxos::core::command::StateUpdate::None);
                }
            }
        }
        prop_assert_eq!(leader.snapshot(), backup.snapshot(), "replicas diverged");
    }
}
