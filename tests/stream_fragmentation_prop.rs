//! Property test: a stream of protocol messages survives the reactor's
//! connection buffers byte-identically under arbitrary fragmentation and
//! coalescing.
//!
//! The write side drains a `SendQueue` through a writer that accepts a
//! random number of bytes per call (modeling `EWOULDBLOCK` after partial
//! writes, so frames are torn and re-joined at arbitrary offsets). The
//! read side feeds the resulting byte stream into a `FrameDecoder` in
//! random-sized chunks (modeling nonblocking reads). Every frame must
//! come out byte-for-byte equal to its encoding, in order, and decode to
//! the original message.

use bytes::Bytes;
use gridpaxos_core::ballot::Ballot;
use gridpaxos_core::msg::Msg;
use gridpaxos_core::request::{Reply, ReplyBody, Request, RequestId, RequestKind};
use gridpaxos_core::types::{ClientId, GroupId, Instance, ProcessId, Seq};
use gridpaxos_transport::wire::{decode_msg, encode_to_bytes};
use gridpaxos_transport::{FlushOutcome, FrameDecoder, SendQueue};
use proptest::prelude::*;
use std::io::{self, Write};

fn arb_ballot() -> impl Strategy<Value = Ballot> {
    (any::<u64>(), any::<u32>()).prop_map(|(r, p)| Ballot::new(r, ProcessId(p)))
}

fn arb_request() -> impl Strategy<Value = Msg> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(c, s, op)| {
            Msg::Request(Request::new(
                RequestId::new(ClientId(c), Seq(s)),
                RequestKind::Write,
                Bytes::from(op),
            ))
        })
}

fn arb_reply() -> impl Strategy<Value = Msg> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..64)
                .prop_map(|b| ReplyBody::Ok(Bytes::from(b))),
            Just(ReplyBody::Busy),
            Just(ReplyBody::Empty),
        ],
    )
        .prop_map(|(c, s, l, body)| {
            Msg::Reply(Reply {
                id: RequestId::new(ClientId(c), Seq(s)),
                leader: ProcessId(l),
                body,
            })
        })
}

/// A small but shape-diverse message mix: variable-length payloads
/// (requests/replies), fixed-layout coordination traffic, and the group
/// envelope.
fn arb_msg() -> impl Strategy<Value = Msg> {
    let plain = prop_oneof![
        arb_request(),
        arb_reply(),
        (arb_ballot(), any::<u64>(), any::<u64>()).prop_map(|(ballot, chosen, hb_seq)| {
            Msg::Heartbeat {
                ballot,
                chosen: Instance(chosen),
                hb_seq,
            }
        }),
        (
            arb_ballot(),
            proptest::collection::vec(any::<u64>().prop_map(Instance), 0..5)
        )
            .prop_map(|(ballot, instances)| Msg::Accepted { ballot, instances }),
        (arb_ballot(), any::<u64>()).prop_map(|(ballot, upto)| Msg::Chosen {
            ballot,
            upto: Instance(upto)
        }),
        (arb_ballot(), any::<u64>())
            .prop_map(|(ballot, epoch)| Msg::ConfirmBatch { ballot, epoch }),
    ];
    (any::<bool>(), any::<u32>(), plain).prop_map(|(wrap, group, inner)| {
        if wrap {
            Msg::Grouped {
                group: GroupId(group),
                inner: Box::new(inner),
            }
        } else {
            inner
        }
    })
}

/// A writer that accepts a bounded number of bytes per `write` call and
/// then reports `EWOULDBLOCK` — a socket under backpressure.
struct ThrottledSink {
    out: Vec<u8>,
    budget: usize,
}

impl Write for ThrottledSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
        }
        let n = buf.len().min(self.budget);
        self.budget -= n;
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #[test]
    fn fragmented_and_coalesced_stream_roundtrips_byte_identically(
        msgs in proptest::collection::vec(arb_msg(), 1..8),
        budgets in proptest::collection::vec(1usize..512, 1..32),
        chunks in proptest::collection::vec(1usize..96, 1..32),
    ) {
        // Frame every message and queue it for the connection.
        let mut q = SendQueue::new(usize::MAX / 2); // capacity not under test
        let mut encodings = Vec::new();
        for m in &msgs {
            let body = encode_to_bytes(m);
            let mut frame = Vec::with_capacity(4 + body.len());
            frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
            frame.extend_from_slice(&body);
            prop_assert!(q.push(Bytes::from(frame)));
            encodings.push(body);
        }

        // Write side: drain through writable "events" with random byte
        // budgets — arbitrary partial writes and coalescing.
        let mut stream = Vec::new();
        let mut bi = 0usize;
        loop {
            let mut sink = ThrottledSink { out: Vec::new(), budget: budgets[bi % budgets.len()] };
            bi += 1;
            let outcome = q.flush_into(&mut sink).expect("throttled sink never hard-fails");
            stream.extend_from_slice(&sink.out);
            if outcome == FlushOutcome::Drained {
                break;
            }
        }
        prop_assert!(q.is_empty());

        // Read side: feed the byte stream to the decoder in random-sized
        // chunks — arbitrary torn reads.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut ci = 0usize;
        while pos < stream.len() {
            let take = chunks[ci % chunks.len()].min(stream.len() - pos);
            ci += 1;
            dec.extend(&stream[pos..pos + take]);
            pos += take;
            while let Some(frame) = dec.next_frame().expect("well-formed stream") {
                got.push(frame);
            }
        }
        prop_assert_eq!(dec.pending(), 0, "no bytes left behind");
        prop_assert_eq!(got.len(), msgs.len());
        for ((frame, encoding), msg) in got.iter().zip(&encodings).zip(&msgs) {
            prop_assert_eq!(frame.as_ref(), encoding.as_ref(), "frame bytes mutated in transit");
            let mut buf = frame.clone();
            let decoded = decode_msg(&mut buf).expect("frame decodes");
            prop_assert_eq!(&decoded, msg);
        }
    }
}
