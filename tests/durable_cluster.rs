//! Full-stack durability: a TCP cluster with file-backed storage is shut
//! down completely and relaunched from its data directories — committed
//! state must survive the restart.

use bytes::Bytes;
use gridpaxos::core::prelude::*;
use gridpaxos::services::{KvOp, KvStore};
use gridpaxos::transport::{FileStorage, TcpCluster};
use std::path::PathBuf;

fn tmp_dirs(name: &str, n: usize) -> Vec<PathBuf> {
    (0..n)
        .map(|i| {
            let d = std::env::temp_dir().join(format!(
                "gridpaxos-durable-{name}-{}-r{i}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&d);
            d
        })
        .collect()
}

fn launch(dirs: &[PathBuf]) -> TcpCluster {
    let dirs = dirs.to_vec();
    TcpCluster::launch_with_storage(
        Config::cluster(3),
        || Box::new(KvStore::new()),
        move |p: ProcessId| {
            Box::new(
                FileStorage::open_with_sync(&dirs[p.0 as usize], false).expect("open file storage"),
            )
        },
    )
    .expect("launch durable cluster")
}

#[test]
fn committed_state_survives_full_cluster_restart() {
    let dirs = tmp_dirs("restart", 3);

    // Generation 1: commit some writes, then stop everything.
    {
        let cluster = launch(&dirs);
        std::thread::sleep(std::time::Duration::from_millis(300));
        let mut client = cluster.client();
        for (k, v) in [("alpha", "1"), ("beta", "2"), ("gamma", "3")] {
            let reply = client
                .call(RequestKind::Write, KvOp::Put(k.into(), v.into()).encode())
                .expect("write");
            assert!(matches!(reply, ReplyBody::Ok(_)));
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
        let replicas = cluster.shutdown();
        assert!(replicas.iter().all(|r| r.chosen_prefix() == Instance(3)));
    }

    // Generation 2: relaunch from the same directories.
    {
        let cluster = launch(&dirs);
        std::thread::sleep(std::time::Duration::from_millis(300));
        let mut client = cluster.client();
        let reply = client
            .call(RequestKind::Read, KvOp::Get("beta".into()).encode())
            .expect("read after restart");
        let ReplyBody::Ok(payload) = reply else {
            panic!("unexpected reply");
        };
        assert_eq!(
            KvStore::decode_reply(&payload).as_deref(),
            Some("2"),
            "committed write must survive the restart"
        );
        // And the cluster keeps making progress on top of recovered state.
        let reply = client
            .call(RequestKind::Write, KvOp::Add("counter".into(), 1).encode())
            .expect("write after restart");
        assert!(matches!(reply, ReplyBody::Ok(_)));

        std::thread::sleep(std::time::Duration::from_millis(250));
        let replicas = cluster.shutdown();
        let snaps: Vec<Bytes> = replicas.iter().map(|r| r.service_snapshot()).collect();
        assert!(snaps.windows(2).all(|w| w[0] == w[1]));
        let mut kv = KvStore::new();
        kv.restore(&snaps[0]);
        assert_eq!(kv.get("alpha"), Some("1"));
        assert_eq!(kv.get("counter"), Some("1"));
        assert!(
            replicas.iter().all(|r| r.chosen_prefix() >= Instance(4)),
            "progress continued past the recovered prefix"
        );
    }
    for d in dirs {
        std::fs::remove_dir_all(d).ok();
    }
}
