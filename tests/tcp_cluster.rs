//! End-to-end tests over the real TCP transport on loopback — the same
//! deployment substrate as the paper's prototype. These run actual OS
//! threads and sockets, so they are kept small and generously timed.

use bytes::Bytes;
use gridpaxos::core::prelude::*;
use gridpaxos::services::{KvOp, KvStore};
use gridpaxos::transport::TcpCluster;

fn wait_for_leader() {
    // Bootstrap election over real sockets; cluster timeouts are tens of ms.
    std::thread::sleep(std::time::Duration::from_millis(300));
}

#[test]
fn tcp_write_then_read_roundtrip() {
    let cluster = TcpCluster::launch(Config::cluster(3), || Box::new(KvStore::new()))
        .expect("launch cluster");
    wait_for_leader();
    let mut client = cluster.client();

    let reply = client
        .call(
            RequestKind::Write,
            KvOp::Put("k".into(), "v".into()).encode(),
        )
        .expect("write completes over TCP");
    assert!(matches!(reply, ReplyBody::Ok(_)));

    let reply = client
        .call(RequestKind::Read, KvOp::Get("k".into()).encode())
        .expect("read completes over TCP");
    let ReplyBody::Ok(payload) = reply else {
        panic!("unexpected reply");
    };
    assert_eq!(KvStore::decode_reply(&payload).as_deref(), Some("v"));

    // Replicas converge (give the final Chosen/heartbeat a moment to
    // propagate before stopping the threads).
    std::thread::sleep(std::time::Duration::from_millis(250));
    let replicas = cluster.shutdown();
    assert_eq!(replicas.len(), 3);
    let snaps: Vec<Bytes> = replicas.iter().map(|r| r.service_snapshot()).collect();
    assert!(snaps.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(replicas[0].chosen_prefix(), Instance(1));
}

#[test]
fn tcp_multiple_clients_interleave() {
    let cluster = TcpCluster::launch(Config::cluster(3), || Box::new(KvStore::new()))
        .expect("launch cluster");
    wait_for_leader();

    let mut handles = Vec::new();
    for c in 0..4 {
        let mut client = cluster.client();
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                let op = KvOp::Add(format!("counter-{c}"), 1);
                let reply = client
                    .call(RequestKind::Write, op.encode())
                    .expect("write completes");
                assert!(matches!(reply, ReplyBody::Ok(_)), "c={c} i={i}");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    std::thread::sleep(std::time::Duration::from_millis(250));
    let replicas = cluster.shutdown();
    let snaps: Vec<Bytes> = replicas.iter().map(|r| r.service_snapshot()).collect();
    assert!(snaps.windows(2).all(|w| w[0] == w[1]), "replicas diverged");
    // 40 writes total were sequenced.
    assert!(replicas[0].chosen_prefix().0 >= 1);
    let mut kv = KvStore::new();
    kv.restore(&snaps[0]);
    for c in 0..4 {
        assert_eq!(kv.get(&format!("counter-{c}")), Some("10"));
    }
}

#[test]
fn tcp_transactions_commit() {
    let cfg = Config::cluster(3).with_txn_mode(TxnMode::TPaxos);
    let cluster = TcpCluster::launch(cfg, || Box::new(KvStore::new())).expect("launch");
    wait_for_leader();
    let mut client = cluster.client();

    let script = TxnScript {
        ops: vec![
            (
                RequestKind::Write,
                KvOp::Put("a".into(), "1".into()).encode(),
            ),
            (
                RequestKind::Write,
                KvOp::Put("b".into(), "2".into()).encode(),
            ),
        ],
    };
    let outcome = client.run_txn(script).expect("txn completes");
    assert_eq!(outcome, TxnOutcome::Committed);

    let reply = client
        .call(RequestKind::Read, KvOp::Get("b".into()).encode())
        .expect("read");
    let ReplyBody::Ok(payload) = reply else {
        panic!()
    };
    assert_eq!(KvStore::decode_reply(&payload).as_deref(), Some("2"));

    std::thread::sleep(std::time::Duration::from_millis(250));
    let replicas = cluster.shutdown();
    let snaps: Vec<Bytes> = replicas.iter().map(|r| r.service_snapshot()).collect();
    assert!(snaps.windows(2).all(|w| w[0] == w[1]));
}

// The KvStore App impl is only reachable through the trait here.
