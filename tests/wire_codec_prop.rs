//! Property test: any protocol message round-trips through the wire
//! codec byte-for-byte, consuming its whole encoding.
//!
//! This lives at the workspace top level (rather than inside the
//! transport crate's unit tests) so the generators exercise `Msg` purely
//! through the public API — the same surface the simulator, the TCP
//! transport and the `check` model harness use.

use bytes::Bytes;
use gridpaxos_core::ballot::Ballot;
use gridpaxos_core::command::{
    AcceptedEntry, Command, Decree, DecreeEntry, DedupEntry, SnapshotBlob, StateUpdate,
};
use gridpaxos_core::msg::Msg;
use gridpaxos_core::request::{
    AbortReason, Reply, ReplyBody, Request, RequestId, RequestKind, TxnCtl,
};
use gridpaxos_core::types::{ClientId, GroupId, Instance, ProcessId, Seq, TxnId};
use gridpaxos_transport::wire::{decode_msg, encode_to_bytes};
use proptest::prelude::*;

fn arb_bytes() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(Bytes::from)
}

fn arb_ballot() -> impl Strategy<Value = Ballot> {
    (any::<u64>(), any::<u32>()).prop_map(|(r, p)| Ballot::new(r, ProcessId(p)))
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    any::<u64>().prop_map(Instance)
}

fn arb_request_id() -> impl Strategy<Value = RequestId> {
    (any::<u64>(), any::<u64>()).prop_map(|(c, s)| RequestId::new(ClientId(c), Seq(s)))
}

fn arb_txn_ctl() -> impl Strategy<Value = TxnCtl> {
    prop_oneof![
        any::<u64>().prop_map(|t| TxnCtl::Op { txn: TxnId(t) }),
        (any::<u64>(), any::<u32>()).prop_map(|(t, n)| TxnCtl::Commit {
            txn: TxnId(t),
            n_ops: n
        }),
        any::<u64>().prop_map(|t| TxnCtl::Abort { txn: TxnId(t) }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        arb_request_id(),
        prop_oneof![
            Just(RequestKind::Read),
            Just(RequestKind::Write),
            Just(RequestKind::Original)
        ],
        proptest::option::of(arb_txn_ctl()),
        arb_bytes(),
    )
        .prop_map(|(id, kind, txn, op)| Request { id, kind, txn, op })
}

fn arb_reply_body() -> impl Strategy<Value = ReplyBody> {
    prop_oneof![
        arb_bytes().prop_map(ReplyBody::Ok),
        any::<u64>().prop_map(|t| ReplyBody::TxnCommitted { txn: TxnId(t) }),
        (any::<u64>(), 0..4u8).prop_map(|(t, r)| ReplyBody::TxnAborted {
            txn: TxnId(t),
            reason: match r {
                0 => AbortReason::ClientAbort,
                1 => AbortReason::LeaderSwitch,
                2 => AbortReason::Conflict,
                _ => AbortReason::Unsupported,
            },
        }),
        Just(ReplyBody::Empty),
        Just(ReplyBody::Busy),
    ]
}

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        Just(Command::Noop),
        arb_request().prop_map(Command::Req),
        (
            arb_request_id(),
            any::<u64>(),
            proptest::collection::vec(arb_request(), 0..3)
        )
            .prop_map(|(id, t, ops)| Command::TxnCommit {
                id,
                txn: TxnId(t),
                ops
            }),
    ]
}

fn arb_update() -> impl Strategy<Value = StateUpdate> {
    prop_oneof![
        Just(StateUpdate::None),
        arb_bytes().prop_map(StateUpdate::Full),
        arb_bytes().prop_map(StateUpdate::Delta),
        arb_bytes().prop_map(StateUpdate::Reproduce),
    ]
}

fn arb_decree() -> impl Strategy<Value = Decree> {
    proptest::collection::vec((arb_command(), arb_update(), arb_reply_body()), 0..3).prop_map(
        |entries| Decree {
            entries: entries
                .into_iter()
                .map(|(cmd, update, reply)| DecreeEntry { cmd, update, reply })
                .collect(),
        },
    )
}

fn arb_snapshot() -> impl Strategy<Value = SnapshotBlob> {
    (
        arb_instance(),
        arb_bytes(),
        proptest::collection::vec((any::<u64>(), any::<u64>(), arb_reply_body()), 0..3),
    )
        .prop_map(|(upto, app, dedup)| SnapshotBlob {
            upto,
            app,
            dedup: dedup
                .into_iter()
                .map(|(c, s, reply)| DedupEntry {
                    client: ClientId(c),
                    seq: Seq(s),
                    reply,
                })
                .collect(),
        })
}

/// Every `Msg` variant except the `Grouped` envelope (which must not
/// nest, so it gets its own wrapper strategy below).
fn arb_plain_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        arb_request().prop_map(Msg::Request),
        (arb_request_id(), any::<u32>(), arb_reply_body()).prop_map(|(id, l, body)| {
            Msg::Reply(Reply {
                id,
                leader: ProcessId(l),
                body,
            })
        }),
        (
            arb_ballot(),
            arb_instance(),
            proptest::collection::vec(arb_instance(), 0..4)
        )
            .prop_map(|(ballot, chosen_prefix, known_above)| Msg::Prepare {
                ballot,
                chosen_prefix,
                known_above,
            }),
        (
            arb_ballot(),
            arb_instance(),
            proptest::collection::vec((arb_instance(), arb_ballot(), arb_decree()), 0..3),
            proptest::option::of(arb_snapshot()),
        )
            .prop_map(|(ballot, chosen_prefix, accepted, snapshot)| Msg::Promise {
                ballot,
                chosen_prefix,
                accepted: accepted
                    .into_iter()
                    .map(|(instance, ballot, decree)| AcceptedEntry {
                        instance,
                        ballot,
                        decree,
                    })
                    .collect(),
                snapshot,
            }),
        (arb_ballot(), arb_ballot())
            .prop_map(|(ballot, promised)| Msg::PrepareNack { ballot, promised }),
        (
            arb_ballot(),
            proptest::collection::vec((arb_instance(), arb_decree()), 0..3)
        )
            .prop_map(|(ballot, entries)| Msg::Accept { ballot, entries }),
        (
            arb_ballot(),
            proptest::collection::vec(arb_instance(), 0..5)
        )
            .prop_map(|(ballot, instances)| Msg::Accepted { ballot, instances }),
        (arb_ballot(), arb_ballot())
            .prop_map(|(ballot, promised)| Msg::AcceptNack { ballot, promised }),
        (arb_ballot(), arb_instance()).prop_map(|(ballot, upto)| Msg::Chosen { ballot, upto }),
        (arb_ballot(), arb_request_id()).prop_map(|(ballot, read)| Msg::Confirm { ballot, read }),
        (arb_ballot(), any::<u64>(), any::<bool>()).prop_map(|(ballot, epoch, backlog)| {
            Msg::ConfirmReq {
                ballot,
                epoch,
                backlog,
            }
        }),
        (arb_ballot(), any::<u64>())
            .prop_map(|(ballot, epoch)| Msg::ConfirmBatch { ballot, epoch }),
        (arb_ballot(), arb_instance(), any::<u64>()).prop_map(|(ballot, chosen, hb_seq)| {
            Msg::Heartbeat {
                ballot,
                chosen,
                hb_seq,
            }
        }),
        (arb_ballot(), any::<u64>())
            .prop_map(|(ballot, hb_seq)| Msg::HeartbeatAck { ballot, hb_seq }),
        arb_instance().prop_map(|have| Msg::CatchUpReq { have }),
        (
            arb_ballot(),
            proptest::collection::vec((arb_instance(), arb_decree()), 0..3),
            proptest::option::of(arb_snapshot()),
            arb_instance(),
        )
            .prop_map(|(ballot, entries, snapshot, upto)| Msg::CatchUp {
                ballot,
                entries,
                snapshot,
                upto,
            }),
        (
            arb_ballot(),
            arb_instance(),
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec((any::<u64>(), any::<u64>(), arb_reply_body()), 0..3),
            arb_bytes(),
        )
            .prop_map(
                |(ballot, upto, seq, total, dedup, data)| Msg::CatchUpChunk {
                    ballot,
                    upto,
                    seq,
                    total,
                    dedup: dedup
                        .into_iter()
                        .map(|(c, s, reply)| DedupEntry {
                            client: ClientId(c),
                            seq: Seq(s),
                            reply,
                        })
                        .collect(),
                    data,
                }
            ),
    ]
}

/// Any message, sometimes wrapped in a (never-nested) group envelope.
fn arb_msg() -> impl Strategy<Value = Msg> {
    (any::<bool>(), any::<u32>(), arb_plain_msg()).prop_map(|(wrap, group, inner)| {
        if wrap {
            Msg::Grouped {
                group: GroupId(group),
                inner: Box::new(inner),
            }
        } else {
            inner
        }
    })
}

proptest! {
    #[test]
    fn any_msg_roundtrips_through_the_codec(msg in arb_msg()) {
        let mut buf = encode_to_bytes(&msg);
        let decoded = decode_msg(&mut buf).expect("generated message must decode");
        prop_assert!(buf.is_empty(), "codec left {} trailing bytes", buf.len());
        prop_assert_eq!(decoded, msg);
    }
}
