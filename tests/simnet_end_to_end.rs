//! End-to-end integration tests on the simulator: failure-free runs across
//! the paper's topologies, protocol-mode equivalences, and replica
//! consistency under load.

use gridpaxos::core::prelude::*;
use gridpaxos::simnet::workload::{OpLoop, TxnLoop};
use gridpaxos::simnet::{Experiment, SimOpts, Topology, World};

const START: Time = Time(200_000_000);
const DEADLINE: Time = Time(3_600_000_000_000);

fn run_ops(
    cfg: Config,
    topology: Topology,
    kind: RequestKind,
    clients: usize,
    per_client: u64,
    seed: u64,
) -> World {
    let opts = SimOpts::for_topology(topology, seed);
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
    for _ in 0..clients {
        w.add_client(Box::new(OpLoop::new(kind, per_client)), None, START);
    }
    assert!(w.run_to_completion(DEADLINE), "run must complete");
    let settle = w.now.after(Dur::from_secs(1));
    w.run_until(settle);
    w
}

fn assert_converged(w: &World) {
    let states = w.replica_states();
    assert!(
        states.windows(2).all(|p| p[0] == p[1]),
        "replica states diverged: {:?}",
        states.iter().map(|(i, _)| i).collect::<Vec<_>>()
    );
}

#[test]
fn writes_on_every_paper_topology_converge() {
    for (topo, cfg) in [
        (Topology::sysnet(3), Config::cluster(3)),
        (Topology::berkeley_princeton(3), Config::wan(3)),
        (Topology::wan_spread(), Config::wan(3)),
    ] {
        let name = topo.name;
        let w = run_ops(cfg, topo, RequestKind::Write, 4, 50, 1);
        assert_eq!(w.metrics.completed_ops, 200, "topology {name}");
        assert_converged(&w);
    }
}

#[test]
fn xpaxos_reads_consume_no_instances() {
    let w = run_ops(
        Config::cluster(3),
        Topology::sysnet(3),
        RequestKind::Read,
        4,
        100,
        2,
    );
    assert_eq!(w.metrics.completed_ops, 400);
    let leader = w.leader().expect("stable leader");
    let prefix = w.replica(leader).unwrap().chosen_prefix();
    assert_eq!(prefix, Instance::ZERO, "reads must not occupy instances");
}

#[test]
fn consensus_reads_and_xpaxos_reads_return_same_results() {
    // Both modes must observe the latest committed write.
    for mode in [ReadMode::XPaxos, ReadMode::Consensus] {
        let cfg = Config::cluster(3).with_read_mode(mode);
        let opts = SimOpts::for_topology(Topology::sysnet(3), 3);
        let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
        // One client interleaves writes and reads.
        struct Alternating {
            remaining: u64,
            outstanding: bool,
            last_read_value: Option<u64>,
            writes_done: u64,
        }
        impl gridpaxos::simnet::workload::Driver for Alternating {
            fn kick(
                &mut self,
                core: &mut gridpaxos::core::client::ClientCore,
                now: Time,
            ) -> Option<Vec<Action>> {
                if self.outstanding || self.remaining == 0 {
                    return None;
                }
                self.remaining -= 1;
                self.outstanding = true;
                let kind = if self.remaining.is_multiple_of(2) {
                    RequestKind::Read
                } else {
                    RequestKind::Write
                };
                Some(core.submit_op(kind, bytes::Bytes::new(), now))
            }
            fn on_complete(
                &mut self,
                done: &gridpaxos::core::client::CompletedOp,
                _now: Time,
                _m: &mut gridpaxos::simnet::Metrics,
            ) {
                self.outstanding = false;
                match done.req.kind {
                    RequestKind::Write => self.writes_done += 1,
                    RequestKind::Read => {
                        let payload = done.body.payload().expect("read reply");
                        let v = u64::from_le_bytes(payload[..8].try_into().unwrap());
                        assert_eq!(
                            v, self.writes_done,
                            "read must reflect the latest committed write"
                        );
                        self.last_read_value = Some(v);
                    }
                    RequestKind::Original => {}
                }
            }
            fn done(&self) -> bool {
                self.remaining == 0 && !self.outstanding
            }
        }
        w.add_client(
            Box::new(Alternating {
                remaining: 40,
                outstanding: false,
                last_read_value: None,
                writes_done: 0,
            }),
            None,
            START,
        );
        assert!(w.run_to_completion(DEADLINE), "mode {mode:?}");
    }
}

#[test]
fn classic_req_only_mode_matches_req_state_for_deterministic_service() {
    // NoopApp is deterministic, so the classic baseline must produce the
    // same final state as state shipping.
    let mut finals = Vec::new();
    for vm in [ValueMode::ReqState, ValueMode::ReqOnly] {
        let cfg = Config::cluster(3).with_value_mode(vm);
        let w = run_ops(cfg, Topology::sysnet(3), RequestKind::Write, 2, 50, 4);
        assert_converged(&w);
        finals.push(w.replica_states()[0].clone());
    }
    assert_eq!(finals[0], finals[1]);
}

#[test]
fn transactions_complete_in_both_modes_with_identical_state() {
    let mut finals = Vec::new();
    for mode in [TxnMode::PerOp, TxnMode::TPaxos] {
        let cfg = Config::cluster(3).with_txn_mode(mode);
        let opts = SimOpts::for_topology(Topology::sysnet(3), 5);
        let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
        for _ in 0..3 {
            w.add_client(
                Box::new(TxnLoop::new(TxnScript::write_only(3), 20)),
                None,
                START,
            );
        }
        assert!(w.run_to_completion(DEADLINE), "mode {mode:?}");
        assert_eq!(w.metrics.txn_commits, 60);
        assert_eq!(w.metrics.txn_aborts, 0);
        let settle = w.now.after(Dur::from_secs(1));
        w.run_until(settle);
        assert_converged(&w);
        finals.push(w.replica_states()[0].1.clone());
    }
    // 60 committed transactions of 1 "write effect" each (NoopApp counts a
    // commit as one write) — same final count in both modes.
    assert_eq!(finals[0], finals[1]);
}

#[test]
fn lossy_network_still_completes_via_retransmission() {
    let mut topo = Topology::sysnet(3);
    topo.loss = 0.01; // 1% of all messages vanish
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(topo, 6);
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
    for _ in 0..2 {
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 200)), None, START);
    }
    assert!(w.run_to_completion(DEADLINE), "loss must be survivable");
    assert_eq!(w.metrics.completed_ops, 400);
    assert!(w.metrics.dropped_msgs > 0, "the loss model must have fired");
    let settle = w.now.after(Dur::from_secs(2));
    w.run_until(settle);
    assert_converged(&w);
}

#[test]
fn singleton_and_five_replica_groups_work() {
    for n in [1usize, 5] {
        let w = run_ops(
            Config::cluster(n),
            Topology::sysnet(n),
            RequestKind::Write,
            2,
            25,
            7,
        );
        assert_eq!(w.metrics.completed_ops, 50, "n={n}");
        assert_converged(&w);
    }
}

#[test]
fn throughput_report_shapes_hold() {
    // A cheap re-assertion of the paper's headline shapes (the full
    // regeneration lives in the bench harness).
    let (read, _) = gridpaxos::simnet::measure_throughput(
        Experiment::on(Topology::sysnet(3), 8),
        RequestKind::Read,
        8,
        100,
    );
    let (write, _) = gridpaxos::simnet::measure_throughput(
        Experiment::on(Topology::sysnet(3), 8),
        RequestKind::Write,
        8,
        100,
    );
    let (orig, _) = gridpaxos::simnet::measure_throughput(
        Experiment::on(Topology::sysnet(3), 8),
        RequestKind::Original,
        8,
        100,
    );
    assert!(read > write, "reads {read:.0} > writes {write:.0}");
    assert!(orig > read, "original {orig:.0} > reads {read:.0}");
}
