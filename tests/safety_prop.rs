//! Property-based safety tests: for arbitrary seeds, workloads and crash
//! schedules, the replicated service must (a) answer every request,
//! (b) never diverge across replicas, and (c) keep the applied count
//! consistent with at-most-once semantics.

use gridpaxos::core::prelude::*;
use gridpaxos::simnet::workload::{OpLoop, TxnLoop};
use gridpaxos::simnet::{SimOpts, Topology, World};
use proptest::prelude::*;

const START: Time = Time(200_000_000);
const DEADLINE: Time = Time(3_600_000_000_000);

#[derive(Clone, Debug)]
struct FaultPlan {
    /// (replica, crash_ms, down_ms) — recover crash_ms+down_ms later.
    faults: Vec<(u32, u64, u64)>,
}

fn arb_fault_plan(n: u32) -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((0..n, 300u64..3000, 200u64..1500), 0..3)
        .prop_map(|faults| FaultPlan { faults })
        .prop_filter("at most a minority down at once", move |p| {
            // Conservative: distinct replicas only, so with n=3 at most ... we
            // allow two faults but require different replicas and
            // non-overlapping down windows OR different replicas with overlap
            // counting < majority.
            let mut events: Vec<(u64, i32, u32)> = Vec::new();
            for (r, at, down) in &p.faults {
                events.push((*at, 1, *r));
                events.push((at + down, -1, *r));
            }
            events.sort();
            let mut down_now = std::collections::HashSet::new();
            for (_, delta, r) in events {
                if delta == 1 {
                    if !down_now.insert(r) {
                        return false; // same replica crashed twice while down
                    }
                } else {
                    down_now.remove(&r);
                }
                if down_now.len() > ((n as usize) - 1) / 2 {
                    return false; // would lose the majority
                }
            }
            true
        })
}

fn apply_plan(w: &mut World, plan: &FaultPlan) {
    for (r, at, down) in &plan.faults {
        w.crash_at(ProcessId(*r), Time(Dur::from_millis(*at).0));
        w.recover_at(ProcessId(*r), Time(Dur::from_millis(at + down).0));
    }
}

/// Run past both a settle delay and the end of the fault plan (a recovery
/// may be scheduled after the workload finished).
fn settle_states(w: &mut World, plan: &FaultPlan) -> Vec<(Instance, bytes::Bytes)> {
    let plan_end = plan
        .faults
        .iter()
        .map(|(_, at, down)| at + down)
        .max()
        .unwrap_or(0);
    let settle = w
        .now
        .after(Dur::from_secs(3))
        .max(Time(Dur::from_millis(plan_end + 2000).0));
    w.run_until(settle);
    w.replica_states()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn writes_complete_and_replicas_agree_under_faults(
        seed in 0u64..10_000,
        clients in 1usize..5,
        per_client in 50u64..400,
        plan in arb_fault_plan(3),
    ) {
        let cfg = Config::cluster(3);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
        for _ in 0..clients {
            w.add_client(Box::new(OpLoop::new(RequestKind::Write, per_client)), None, START);
        }
        apply_plan(&mut w, &plan);
        prop_assert!(w.run_to_completion(DEADLINE), "workload stalled under {plan:?}");
        prop_assert_eq!(w.metrics.completed_ops, clients as u64 * per_client);

        let states = settle_states(&mut w, &plan);
        prop_assert_eq!(states.len(), 3, "everyone recovered");
        for pair in states.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "divergence under {:?}", plan.clone());
        }
        // At-most-once: the no-op service counted exactly one application
        // per write, even though clients retransmitted during failovers.
        let count = u64::from_le_bytes(states[0].1[..8].try_into().unwrap());
        prop_assert_eq!(count, clients as u64 * per_client);
    }

    #[test]
    fn mixed_reads_writes_under_faults_stay_consistent(
        seed in 0u64..10_000,
        plan in arb_fault_plan(3),
    ) {
        let cfg = Config::cluster(3);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 150)), None, START);
        w.add_client(Box::new(OpLoop::new(RequestKind::Read, 150)), None, START);
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 150)), None, START);
        apply_plan(&mut w, &plan);
        prop_assert!(w.run_to_completion(DEADLINE));
        let states = settle_states(&mut w, &plan);
        for pair in states.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
        let count = u64::from_le_bytes(states[0].1[..8].try_into().unwrap());
        prop_assert_eq!(count, 300, "reads must not have mutated state");
    }

    #[test]
    fn tpaxos_transactions_all_commit_exactly_once_under_faults(
        seed in 0u64..10_000,
        txns in 20u64..120,
        plan in arb_fault_plan(3),
    ) {
        let cfg = Config::cluster(3).with_txn_mode(TxnMode::TPaxos);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
        w.add_client(Box::new(TxnLoop::new(TxnScript::write_only(3), txns)), None, START);
        apply_plan(&mut w, &plan);
        prop_assert!(w.run_to_completion(DEADLINE));
        prop_assert_eq!(w.metrics.txn_commits, txns);
        let states = settle_states(&mut w, &plan);
        for pair in states.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
        // Exactly `txns` commits applied — aborted attempts left no trace.
        let count = u64::from_le_bytes(states[0].1[..8].try_into().unwrap());
        prop_assert_eq!(count, txns);
    }

    #[test]
    fn batched_confirm_reads_stay_safe_and_live_under_faults(
        seed in 0u64..10_000,
        readers in 26usize..33,
        per_client in 30u64..100,
        plan in arb_fault_plan(3),
    ) {
        // Enough concurrent closed-loop readers to exceed the backlog
        // threshold push the leader into epoch-batched confirm rounds
        // (and follower confirm suppression); crashes and
        // recoveries force leader changes mid-round. The batched path must
        // neither stall (a lost suppression-lift hint is recovered via
        // client retransmission) nor let a deposed leader's round answer
        // reads against stale state.
        let cfg = Config::cluster(3).with_confirm_batching(true);
        let opts = SimOpts::for_topology(Topology::sysnet(3), seed);
        let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
        for _ in 0..readers {
            w.add_client(Box::new(OpLoop::new(RequestKind::Read, per_client)), None, START);
        }
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, per_client)), None, START);
        apply_plan(&mut w, &plan);
        prop_assert!(w.run_to_completion(DEADLINE), "reads stalled under {plan:?}");
        prop_assert_eq!(
            w.metrics.completed_ops,
            (readers as u64 + 1) * per_client,
            "every read and write answered"
        );
        let states = settle_states(&mut w, &plan);
        prop_assert_eq!(states.len(), 3, "everyone recovered");
        for pair in states.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "divergence under {:?}", plan.clone());
        }
        // Reads left no trace: exactly one application per write.
        let count = u64::from_le_bytes(states[0].1[..8].try_into().unwrap());
        prop_assert_eq!(count, per_client, "reads must not have mutated state");
        // The batched path was actually exercised, not silently dormant.
        let rounds = w.metrics.msgs_by_tag.get("confirm_req").copied().unwrap_or(0);
        prop_assert!(rounds > 0, "concurrent readers never triggered a confirm round");
    }

    #[test]
    fn lossy_links_never_break_safety(
        seed in 0u64..10_000,
        loss in 0.0f64..0.05,
    ) {
        let mut topo = Topology::sysnet(3);
        topo.loss = loss;
        let cfg = Config::cluster(3);
        let opts = SimOpts::for_topology(topo, seed);
        let mut w = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));
        w.add_client(Box::new(OpLoop::new(RequestKind::Write, 100)), None, START);
        prop_assert!(w.run_to_completion(DEADLINE));
        let states = settle_states(&mut w, &FaultPlan { faults: vec![] });
        for pair in states.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
        let count = u64::from_le_bytes(states[0].1[..8].try_into().unwrap());
        prop_assert_eq!(count, 100, "at-most-once despite retransmissions");
    }
}
