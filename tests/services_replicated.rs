//! The real nondeterministic services (§2) running replicated on the
//! simulator: the randomized resource broker and the timing-dependent
//! scheduler, plus the transactional KV store — with crashes thrown in.

use bytes::Bytes;
use gridpaxos::core::prelude::*;
use gridpaxos::services::{Broker, BrokerOp, KvOp, KvStore, SchedOp, Scheduler};
use gridpaxos::simnet::workload::Driver;
use gridpaxos::simnet::{SimOpts, Topology, World};

const START: Time = Time(200_000_000);
const DEADLINE: Time = Time(3_600_000_000_000);

/// Drives a fixed list of (kind, payload) ops, closed loop.
struct Script {
    steps: Vec<(RequestKind, Bytes)>,
    next: usize,
    outstanding: bool,
    replies: Vec<ReplyBody>,
}

impl Script {
    fn new(steps: Vec<(RequestKind, Bytes)>) -> Script {
        Script {
            steps,
            next: 0,
            outstanding: false,
            replies: Vec::new(),
        }
    }
}

impl Driver for Script {
    fn kick(
        &mut self,
        core: &mut gridpaxos::core::client::ClientCore,
        now: Time,
    ) -> Option<Vec<Action>> {
        if self.outstanding || self.next >= self.steps.len() {
            return None;
        }
        let (kind, payload) = self.steps[self.next].clone();
        self.next += 1;
        self.outstanding = true;
        Some(core.submit_op(kind, payload, now))
    }

    fn on_complete(
        &mut self,
        done: &gridpaxos::core::client::CompletedOp,
        _now: Time,
        _m: &mut gridpaxos::simnet::Metrics,
    ) {
        self.outstanding = false;
        self.replies.push(done.body.clone());
    }

    fn done(&self) -> bool {
        !self.outstanding && self.next >= self.steps.len()
    }
}

fn settle_states(w: &mut World) -> Vec<(Instance, Bytes)> {
    let settle = w.now.after(Dur::from_secs(2));
    w.run_until(settle);
    w.replica_states()
}

#[test]
fn broker_randomized_placements_replicate_consistently_across_crash() {
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 17);
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(Broker::new())));

    let mut steps: Vec<(RequestKind, Bytes)> = ["m1", "m2", "m3"]
        .iter()
        .map(|m| {
            (
                RequestKind::Write,
                BrokerOp::AddResource {
                    name: (*m).into(),
                    capacity: 20,
                }
                .encode(),
            )
        })
        .collect();
    for task in 0..40u64 {
        steps.push((
            RequestKind::Write,
            BrokerOp::Request { task, units: 1 }.encode(),
        ));
    }
    w.add_client(Box::new(Script::new(steps)), None, START);
    w.crash_at(ProcessId(0), Time(Dur::from_millis(500).0));
    w.recover_at(ProcessId(0), Time(Dur::from_secs(2).0));
    assert!(w.run_to_completion(DEADLINE));

    let states = settle_states(&mut w);
    assert!(states.windows(2).all(|p| p[0] == p[1]), "brokers diverged");

    // Capacity accounting is intact: 40 units allocated out of 60.
    let mut broker = Broker::new();
    use gridpaxos::core::service::App as _;
    broker.restore(&states[0].1);
    assert_eq!(broker.free_units(), 20);
    for task in 0..40u64 {
        assert!(broker.placement(task).is_some(), "task {task} placed");
    }
}

#[test]
fn scheduler_decisions_replicate_across_crash() {
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 23);
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(Scheduler::new())));

    let mut steps: Vec<(RequestKind, Bytes)> = vec![(
        RequestKind::Write,
        SchedOp::AddMachine {
            name: "m".into(),
            slots: 8,
        }
        .encode(),
    )];
    for job in 0..8u64 {
        steps.push((
            RequestKind::Write,
            SchedOp::Submit {
                job,
                priority: (job % 4) as u32,
            }
            .encode(),
        ));
    }
    for _ in 0..8 {
        steps.push((RequestKind::Write, SchedOp::Dispatch.encode()));
    }
    steps.push((RequestKind::Read, SchedOp::QueueLen.encode()));
    w.add_client(Box::new(Script::new(steps)), None, START);
    w.crash_at(ProcessId(0), Time(Dur::from_millis(400).0));
    assert!(w.run_to_completion(DEADLINE));

    let states = settle_states(&mut w);
    assert!(
        states.windows(2).all(|p| p[0] == p[1]),
        "schedulers diverged"
    );

    use gridpaxos::core::service::App as _;
    let mut sched = Scheduler::new();
    sched.restore(&states[0].1);
    assert_eq!(sched.queue_len(), 0, "everything dispatched");
    for job in 0..8u64 {
        assert!(sched.running_on(job).is_some(), "job {job} running");
    }
}

#[test]
fn kv_store_concurrent_clients_and_crash() {
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 31);
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(KvStore::new())));

    for c in 0..4u64 {
        let steps: Vec<(RequestKind, Bytes)> = (0..25)
            .map(|_| {
                (
                    RequestKind::Write,
                    KvOp::Add(format!("acct-{c}"), 1).encode(),
                )
            })
            .collect();
        w.add_client(Box::new(Script::new(steps)), None, START);
    }
    w.crash_at(ProcessId(0), Time(Dur::from_millis(400).0));
    w.recover_at(ProcessId(0), Time(Dur::from_secs(2).0));
    assert!(w.run_to_completion(DEADLINE));

    let states = settle_states(&mut w);
    assert!(states.windows(2).all(|p| p[0] == p[1]), "stores diverged");

    use gridpaxos::core::service::App as _;
    let mut kv = KvStore::new();
    kv.restore(&states[0].1);
    for c in 0..4u64 {
        assert_eq!(
            kv.get(&format!("acct-{c}")),
            Some("25"),
            "at-most-once Add for client {c}"
        );
    }
}

#[test]
fn kv_reads_see_latest_committed_value() {
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 37);
    let mut w = World::new(cfg, opts, Box::new(|| Box::new(KvStore::new())));

    let mut steps = Vec::new();
    for i in 0..10 {
        steps.push((
            RequestKind::Write,
            KvOp::Put("x".into(), i.to_string()).encode(),
        ));
        steps.push((RequestKind::Read, KvOp::Get("x".into()).encode()));
    }
    w.add_client(Box::new(Script::new(steps)), None, START);
    assert!(w.run_to_completion(DEADLINE));
    // We cannot reach into the driver after the run, but the service-level
    // invariant is covered by the alternating driver in
    // simnet_end_to_end.rs; here we assert convergence + final value.
    let states = settle_states(&mut w);
    assert!(states.windows(2).all(|p| p[0] == p[1]));
    use gridpaxos::core::service::App as _;
    let mut kv = KvStore::new();
    kv.restore(&states[0].1);
    assert_eq!(kv.get("x"), Some("9"));
}
