//! Network-partition tests: split brains must not happen, minority
//! partitions must not make progress, and healing must reconcile
//! everything without losing a committed write.

use gridpaxos::core::prelude::*;
use gridpaxos::simnet::workload::OpLoop;
use gridpaxos::simnet::{SimOpts, Topology, World};

const START: Time = Time(200_000_000);
const DEADLINE: Time = Time(3_600_000_000_000);

fn world(seed: u64, cfg: Config) -> World {
    let opts = SimOpts::for_topology(Topology::sysnet(cfg.n), seed);
    World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())))
}

fn settle_and_check(w: &mut World) {
    let settle = w.now.after(Dur::from_secs(2));
    w.run_until(settle);
    let states = w.replica_states();
    assert!(
        states.windows(2).all(|p| p[0] == p[1]),
        "replica states diverged"
    );
}

#[test]
fn isolated_leader_cannot_commit_majority_side_takes_over() {
    let mut w = world(1, Config::cluster(3));
    for _ in 0..2 {
        w.add_client(
            Box::new(OpLoop::new(RequestKind::Write, 20_000)),
            None,
            START,
        );
    }
    // Cut the bootstrap leader r0 away from {r1, r2} for two seconds.
    w.partition(
        vec![vec![0], vec![1, 2]],
        Time(Dur::from_millis(600).0),
        Time(Dur::from_millis(2600).0),
    );
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 40_000);
    settle_and_check(&mut w);
    // The majority side elected a new leader during the partition; after
    // healing the deposed r0 followed it (no split brain survives).
    let leader = w.leader().expect("exactly one leader");
    assert_ne!(leader, ProcessId(0));
}

#[test]
fn minority_partition_makes_no_progress() {
    let mut w = world(2, Config::cluster(5));
    w.add_client(
        Box::new(OpLoop::new(RequestKind::Write, 50_000)),
        None,
        START,
    );
    // {r0, r1} (leader side) vs {r2, r3, r4}: the client keeps reaching
    // everyone, but the old leader's side lacks a majority.
    w.partition(
        vec![vec![0, 1], vec![2, 3, 4]],
        Time(Dur::from_millis(500).0),
        Time(Dur::from_millis(1500).0),
    );
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 50_000);
    settle_and_check(&mut w);
}

#[test]
fn full_partition_stalls_and_heals() {
    let mut w = world(3, Config::cluster(3));
    w.add_client(
        Box::new(OpLoop::new(RequestKind::Write, 30_000)),
        None,
        START,
    );
    // Everyone isolated from everyone for one second: zero progress.
    w.partition(
        vec![vec![0], vec![1], vec![2]],
        Time(Dur::from_millis(400).0),
        Time(Dur::from_millis(1400).0),
    );
    // Check the stall mid-partition.
    w.run_until(Time(Dur::from_millis(500).0));
    let at_cut = w.metrics.completed_ops;
    w.run_until(Time(Dur::from_millis(1300).0));
    assert!(
        w.metrics.completed_ops <= at_cut + 1,
        "no commits while fully partitioned"
    );
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 30_000);
    settle_and_check(&mut w);
}

#[test]
fn xpaxos_reads_are_blocked_on_the_minority_side() {
    // §3.4's whole point: a leader that cannot gather majority confirms
    // must not answer reads — even though it still *thinks* it leads at
    // the instant the partition starts.
    let mut w = world(4, Config::cluster(3));
    w.add_client(
        Box::new(OpLoop::new(RequestKind::Read, 30_000)),
        None,
        START,
    );
    w.partition(
        vec![vec![0], vec![1, 2]],
        Time(Dur::from_millis(500).0),
        Time(Dur::from_millis(1500).0),
    );
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 30_000);
    // During the cut, the client retried against the majority side.
    assert!(w.metrics.retries > 0, "the failover forced client retries");
}

#[test]
fn repeated_flapping_partitions_preserve_safety() {
    let mut w = world(5, Config::cluster(3));
    for _ in 0..2 {
        w.add_client(
            Box::new(OpLoop::new(RequestKind::Write, 15_000)),
            None,
            START,
        );
    }
    // Alternate which pair is cut, several times.
    for k in 0..4u64 {
        let from = Time(Dur::from_millis(400 + k * 700).0);
        let until = Time(Dur::from_millis(400 + k * 700 + 350).0);
        let groups = if k % 2 == 0 {
            vec![vec![0], vec![1, 2]]
        } else {
            vec![vec![1], vec![0, 2]]
        };
        w.partition(groups, from, until);
    }
    assert!(w.run_to_completion(DEADLINE));
    assert_eq!(w.metrics.completed_ops, 30_000);
    settle_and_check(&mut w);
    // At-most-once held through all the churn.
    let states = w.replica_states();
    let count = u64::from_le_bytes(states[0].1[..8].try_into().unwrap());
    assert_eq!(count, 30_000);
}
