//! Adversarial robustness: a replica fed arbitrary (even nonsensical)
//! protocol messages must never panic, and must keep serving honest
//! traffic afterwards. Byzantine behavior is out of the model (§3.1), but
//! crashing on garbage would make even crash-fault tolerance moot.

use bytes::Bytes;
use gridpaxos::core::ballot::Ballot;
use gridpaxos::core::command::{AcceptedEntry, Command, Decree, SnapshotBlob, StateUpdate};
use gridpaxos::core::msg::Msg;
use gridpaxos::core::prelude::*;
use gridpaxos::core::request::RequestId;
use proptest::prelude::*;

fn arb_ballot() -> impl Strategy<Value = Ballot> {
    (0u64..5, 0u32..4).prop_map(|(r, p)| Ballot::new(r, ProcessId(p)))
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (0u64..20).prop_map(Instance)
}

fn arb_request() -> impl Strategy<Value = gridpaxos::core::request::Request> {
    (
        0u64..4,
        0u64..6,
        prop_oneof![
            Just(RequestKind::Read),
            Just(RequestKind::Write),
            Just(RequestKind::Original)
        ],
        proptest::option::of(prop_oneof![
            (0u64..3).prop_map(|t| TxnCtl::Op { txn: TxnId(t) }),
            (0u64..3, 0u32..4).prop_map(|(t, n)| TxnCtl::Commit {
                txn: TxnId(t),
                n_ops: n
            }),
            (0u64..3).prop_map(|t| TxnCtl::Abort { txn: TxnId(t) }),
        ]),
    )
        .prop_map(|(c, s, kind, txn)| gridpaxos::core::request::Request {
            id: RequestId::new(ClientId(c), Seq(s)),
            kind,
            txn,
            op: Bytes::new(),
        })
}

fn arb_decree() -> impl Strategy<Value = Decree> {
    proptest::collection::vec((arb_request(), proptest::option::of(0u64..3)), 0..3).prop_map(
        |entries| Decree {
            entries: entries
                .into_iter()
                .map(|(r, txn)| gridpaxos::core::command::DecreeEntry {
                    cmd: match txn {
                        None => Command::Req(r),
                        Some(t) => Command::TxnCommit {
                            id: r.id,
                            txn: TxnId(t),
                            ops: vec![r],
                        },
                    },
                    update: StateUpdate::Full(Bytes::from_static(&[1, 2, 3, 4, 5, 6, 7, 8])),
                    reply: ReplyBody::Empty,
                })
                .collect(),
        },
    )
}

fn arb_snapshot() -> impl Strategy<Value = Option<SnapshotBlob>> {
    proptest::option::of((0u64..20).prop_map(|u| SnapshotBlob {
        upto: Instance(u),
        app: Bytes::from_static(&[9u8; 8]),
        dedup: vec![],
    }))
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        arb_request().prop_map(Msg::Request),
        (arb_ballot(), arb_instance()).prop_map(|(b, i)| Msg::Prepare {
            ballot: b,
            chosen_prefix: i,
            known_above: vec![],
        }),
        (arb_ballot(), arb_instance(), arb_decree(), arb_snapshot()).prop_map(|(b, i, d, snap)| {
            Msg::Promise {
                ballot: b,
                chosen_prefix: i,
                accepted: vec![AcceptedEntry {
                    instance: i.next(),
                    ballot: b,
                    decree: d,
                }],
                snapshot: snap,
            }
        }),
        (arb_ballot(), arb_instance(), arb_decree()).prop_map(|(b, i, d)| Msg::Accept {
            ballot: b,
            entries: vec![(i, d)]
        }),
        (arb_ballot(), arb_instance()).prop_map(|(b, i)| Msg::Accepted {
            ballot: b,
            instances: vec![i]
        }),
        (arb_ballot(), arb_ballot()).prop_map(|(b, p)| Msg::AcceptNack {
            ballot: b,
            promised: p
        }),
        (arb_ballot(), arb_ballot()).prop_map(|(b, p)| Msg::PrepareNack {
            ballot: b,
            promised: p
        }),
        (arb_ballot(), arb_instance()).prop_map(|(b, i)| Msg::Chosen { ballot: b, upto: i }),
        (arb_ballot(), 0u64..4, 0u64..6).prop_map(|(b, c, s)| Msg::Confirm {
            ballot: b,
            read: RequestId::new(ClientId(c), Seq(s)),
        }),
        (arb_ballot(), arb_instance(), 0u64..9).prop_map(|(b, c, h)| Msg::Heartbeat {
            ballot: b,
            chosen: c,
            hb_seq: h
        }),
        (arb_ballot(), 0u64..9).prop_map(|(b, h)| Msg::HeartbeatAck {
            ballot: b,
            hb_seq: h
        }),
        arb_instance().prop_map(|i| Msg::CatchUpReq { have: i }),
        (arb_ballot(), arb_instance(), arb_decree(), arb_snapshot()).prop_map(|(b, i, d, snap)| {
            Msg::CatchUp {
                ballot: b,
                entries: vec![(i, d)],
                snapshot: snap,
                upto: i,
            }
        }),
    ]
}

fn arb_sender() -> impl Strategy<Value = Addr> {
    prop_oneof![
        (0u32..4).prop_map(|p| Addr::Replica(ProcessId(p))),
        (0u64..4).prop_map(|c| Addr::Client(ClientId(c))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn replica_survives_arbitrary_message_storms(
        msgs in proptest::collection::vec((arb_sender(), arb_msg()), 1..60),
        timers in proptest::collection::vec(0u8..5, 0..10),
        seed in 0u64..1000,
    ) {
        // A leader, a follower, and a candidate each absorb the storm.
        for bootstrap in [Some(ProcessId(0)), None] {
            let cfg = Config::cluster(3).with_bootstrap_leader(bootstrap);
            let mut r = Replica::new(
                ProcessId(0),
                cfg,
                Box::new(NoopApp::new()),
                Box::new(MemStorage::new()),
                seed,
                Time::ZERO,
            );
            let _ = r.on_start(Time::ZERO);
            let mut now = Time(1);
            for (from, msg) in &msgs {
                let _ = r.on_message(*from, msg.clone(), now);
                now = Time(now.0 + 1_000_000);
            }
            for t in &timers {
                let kind = match t {
                    0 => TimerKind::Heartbeat,
                    1 => TimerKind::LeaderCheck,
                    2 => TimerKind::Retransmit,
                    3 => TimerKind::Election,
                    _ => TimerKind::BatchWindow,
                };
                let _ = r.on_timer(kind, now);
                now = Time(now.0 + 1_000_000);
            }
            // Still alive and introspectable.
            let _ = r.service_snapshot();
            let _ = r.chosen_prefix();
        }
    }
}
