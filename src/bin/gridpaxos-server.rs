//! A deployable replica server: one process of a replicated key-value
//! store over TCP.
//!
//! ```text
//! # A three-replica group on one machine:
//! gridpaxos-server --id 0 --listen 127.0.0.1:7100 \
//!     --peer 0=127.0.0.1:7100 --peer 1=127.0.0.1:7101 --peer 2=127.0.0.1:7102 &
//! gridpaxos-server --id 1 --listen 127.0.0.1:7101 \
//!     --peer 0=127.0.0.1:7100 --peer 1=127.0.0.1:7101 --peer 2=127.0.0.1:7102 &
//! gridpaxos-server --id 2 --listen 127.0.0.1:7102 \
//!     --peer 0=127.0.0.1:7100 --peer 1=127.0.0.1:7101 --peer 2=127.0.0.1:7102 &
//! ```
//!
//! Then talk to the group with `gridpaxos-client`.

use gridpaxos::core::prelude::*;
use gridpaxos::services::KvStore;
use gridpaxos::transport::node::ReplicaNode;
use gridpaxos::transport::{FileStorage, SyncMode, TcpNode};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::process::exit;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: gridpaxos-server --id <N> --listen <host:port> \
         [--peer <id>=<host:port>]... [--tpaxos] [--wan]\n\
         \n\
         --id      this replica's id (0-based)\n\
         --listen  address to bind\n\
         --peer    listen address of every replica (repeat; include self)\n\
         --data-dir <path>  durable storage directory (default: in-memory)\n\
         --sync per-record|batched  WAL fsync policy with --data-dir\n\
                   (per-record: one fsync per record, default; batched:\n\
                   group commit — the drive loop syncs once per drain\n\
                   cycle before any acknowledgment is sent)\n\
         --transport threads|reactor  I/O substrate (default: threads)\n\
                   (threads: two threads per connection; reactor: one\n\
                   epoll readiness loop multiplexing every connection,\n\
                   with admission control — Linux only)\n\
         --tpaxos  enable T-Paxos transaction mode (default: per-op)\n\
         --wan     use WAN-tuned timeouts (default: cluster-tuned)\n\
         --apply-workers <N>  per-node apply-worker pool size (default: 0,\n\
                   apply inline; N>0 hands chosen decrees to N workers —\n\
                   groups apply in parallel, reads fence on applied index)\n\
         --checkpoint-chunk-kb <N>  stream checkpoints in N-KiB chunks\n\
                   against a frozen apply epoch instead of a\n\
                   stop-the-world snapshot (default: 64; 0 = monolithic)"
    );
    exit(2)
}

/// Which I/O substrate drives the replica.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    /// Two blocking threads per connection (reader + writer).
    Threads,
    /// One nonblocking epoll reactor thread for the whole node.
    Reactor,
}

/// Run the replica on the epoll reactor until killed (Linux only).
#[cfg(target_os = "linux")]
fn run_reactor(
    replica: Replica,
    listen: SocketAddr,
    peers: HashMap<ProcessId, SocketAddr>,
    stop: Arc<AtomicBool>,
) -> Replica {
    use gridpaxos::transport::{spawn_reactor_node, ReactorConfig};
    let id = replica.id();
    let listener = match std::net::TcpListener::bind(listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            exit(1);
        }
    };
    if let Ok(bound) = listener.local_addr() {
        eprintln!("gridpaxos-server r{}: reactor listening on {bound}", id.0);
    }
    let handle = match spawn_reactor_node(
        vec![replica],
        listener,
        peers,
        stop,
        ReactorConfig::default(),
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("spawn reactor: {e}");
            exit(1);
        }
    };
    let mut replicas = handle.join();
    replicas.remove(0)
}

#[cfg(not(target_os = "linux"))]
fn run_reactor(
    _replica: Replica,
    _listen: SocketAddr,
    _peers: HashMap<ProcessId, SocketAddr>,
    _stop: Arc<AtomicBool>,
) -> Replica {
    eprintln!("--transport reactor requires Linux (epoll)");
    exit(2)
}

fn main() {
    let mut id: Option<u32> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut peers: HashMap<ProcessId, SocketAddr> = HashMap::new();
    let mut tpaxos = false;
    let mut wan = false;
    let mut data_dir: Option<String> = None;
    let mut sync_mode = SyncMode::PerRecord;
    let mut transport = TransportKind::Threads;
    let mut apply_workers: usize = 0;
    let mut checkpoint_chunk_kb: usize = 64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--id" => {
                i += 1;
                id = args.get(i).and_then(|s| s.parse().ok());
            }
            "--listen" => {
                i += 1;
                listen = args.get(i).and_then(|s| s.parse().ok());
            }
            "--peer" => {
                i += 1;
                let Some((pid, addr)) = args.get(i).and_then(|s| s.split_once('=')) else {
                    usage()
                };
                let (Ok(pid), Ok(addr)) = (pid.parse::<u32>(), addr.parse()) else {
                    usage()
                };
                peers.insert(ProcessId(pid), addr);
            }
            "--data-dir" => {
                i += 1;
                data_dir = args.get(i).cloned();
            }
            "--sync" => {
                i += 1;
                sync_mode = match args.get(i).map(String::as_str) {
                    Some("per-record") => SyncMode::PerRecord,
                    Some("batched") => SyncMode::Batched,
                    _ => usage(),
                };
            }
            "--transport" => {
                i += 1;
                transport = match args.get(i).map(String::as_str) {
                    Some("threads") => TransportKind::Threads,
                    Some("reactor") => TransportKind::Reactor,
                    _ => usage(),
                };
            }
            "--tpaxos" => tpaxos = true,
            "--wan" => wan = true,
            "--apply-workers" => {
                i += 1;
                apply_workers = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(w) => w,
                    None => usage(),
                };
            }
            "--checkpoint-chunk-kb" => {
                i += 1;
                checkpoint_chunk_kb = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(k) => k,
                    None => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    let (Some(id), Some(listen)) = (id, listen) else {
        usage()
    };
    if peers.is_empty() {
        usage();
    }
    let n = peers.len();

    let mut cfg = if wan {
        Config::wan(n)
    } else {
        Config::cluster(n)
    };
    if tpaxos {
        cfg.txn_mode = TxnMode::TPaxos;
    }
    cfg.apply_workers = apply_workers;
    cfg.checkpoint_chunk_bytes = checkpoint_chunk_kb * 1024;

    // Wall-clock-derived seed: replicas must differ (that is the
    // nondeterminism the protocol exists to handle).
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(42)
        ^ u64::from(id);

    // The pool handle must outlive the replica: workers shut down when
    // the last handle and every pipelined app are gone.
    let pool = (apply_workers > 0).then(|| ApplyPool::new(apply_workers));
    let mk_app = || {
        let app: Box<dyn App> = Box::new(KvStore::new());
        match &pool {
            Some(p) => p.wrap(app),
            None => app,
        }
    };

    let replica = match &data_dir {
        Some(dir) => {
            let storage = match FileStorage::open_with_mode(dir, sync_mode) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("open data dir {dir}: {e}");
                    exit(1);
                }
            };
            let fresh = storage.load().promised.is_zero()
                && storage.load().accepted.is_empty()
                && storage.load().checkpoint.is_none();
            if fresh {
                Replica::new(
                    ProcessId(id),
                    cfg,
                    mk_app(),
                    Box::new(storage),
                    seed,
                    Time::ZERO,
                )
            } else {
                eprintln!("gridpaxos-server r{id}: recovering from {dir}");
                Replica::recover(
                    ProcessId(id),
                    cfg,
                    mk_app(),
                    Box::new(storage),
                    seed,
                    Time::ZERO,
                )
            }
        }
        None => Replica::new(
            ProcessId(id),
            cfg,
            mk_app(),
            Box::new(MemStorage::new()),
            seed,
            Time::ZERO,
        ),
    };

    // Run until killed. The threaded path binds via `TcpNode` (acceptor +
    // two threads per connection); the reactor path hands a raw listener
    // to the epoll loop, which drives everything from one thread.
    let stop = Arc::new(AtomicBool::new(false));
    let replica = match transport {
        TransportKind::Threads => {
            let (node, bound) = match TcpNode::bind_replica(ProcessId(id), listen, peers) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("bind {listen}: {e}");
                    exit(1);
                }
            };
            eprintln!("gridpaxos-server r{id}: listening on {bound}, group of {n}");
            ReplicaNode::new(replica, node, stop).run()
        }
        TransportKind::Reactor => run_reactor(replica, listen, peers, stop),
    };
    eprintln!(
        "gridpaxos-server r{id}: stopped at instance {}",
        replica.chosen_prefix()
    );
}
