//! Interactive client for a `gridpaxos-server` group: a small REPL over
//! the replicated key-value store.
//!
//! ```text
//! gridpaxos-client --peer 0=127.0.0.1:7100 --peer 1=127.0.0.1:7101 --peer 2=127.0.0.1:7102
//! > put greeting hello
//! ok
//! > get greeting
//! hello
//! > add hits 1
//! 1
//! > txn put a 1 ; put b 2
//! committed
//! ```

use gridpaxos::core::client::ClientCore;
use gridpaxos::core::prelude::*;
use gridpaxos::services::{KvOp, KvStore};
use gridpaxos::transport::{SyncClient, TcpNode};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: gridpaxos-client [--peer <id>=<host:port>]... \n\
         commands: get K | put K V | del K | add K N | txn <op> [; <op>]... | quit"
    );
    exit(2)
}

fn parse_op(tokens: &[&str]) -> Option<(RequestKind, KvOp)> {
    match tokens {
        ["get", k] => Some((RequestKind::Read, KvOp::Get((*k).into()))),
        ["put", k, v] => Some((RequestKind::Write, KvOp::Put((*k).into(), (*v).into()))),
        ["del", k] => Some((RequestKind::Write, KvOp::Del((*k).into()))),
        ["add", k, n] => n
            .parse()
            .ok()
            .map(|n| (RequestKind::Write, KvOp::Add((*k).into(), n))),
        _ => None,
    }
}

fn show(body: Option<ReplyBody>) {
    match body {
        Some(ReplyBody::Ok(payload)) => match KvStore::decode_reply(&payload) {
            Some(v) => println!("{v}"),
            None => println!("(nil)"),
        },
        Some(ReplyBody::TxnCommitted { .. }) => println!("committed"),
        Some(ReplyBody::TxnAborted { reason, .. }) => println!("aborted: {reason:?}"),
        Some(ReplyBody::Empty) => println!("ok"),
        // The client core retries Busy internally; a Busy surfacing here
        // means the overall deadline expired while the cluster was
        // shedding load.
        Some(ReplyBody::Busy) => println!("error: cluster overloaded (busy), try again"),
        None => println!("error: request timed out (no leader reachable?)"),
    }
}

fn main() {
    let mut peers: HashMap<ProcessId, SocketAddr> = HashMap::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--peer" => {
                i += 1;
                let Some((pid, addr)) = args.get(i).and_then(|s| s.split_once('=')) else {
                    usage()
                };
                let (Ok(pid), Ok(addr)) = (pid.parse::<u32>(), addr.parse()) else {
                    usage()
                };
                peers.insert(ProcessId(pid), addr);
            }
            _ => usage(),
        }
        i += 1;
    }
    if peers.is_empty() {
        usage();
    }
    let n = peers.len();
    let client_id = ClientId(std::process::id().into());
    let node = TcpNode::client(client_id, peers);
    let core = ClientCore::new(client_id, n, Dur::from_millis(500));
    let mut client = SyncClient::new(core, node, n);

    let stdin = std::io::stdin();
    print!("> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            print!("> ");
            std::io::stdout().flush().ok();
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        if let Some(rest) = line.strip_prefix("txn ") {
            // txn put a 1 ; put b 2
            let ops: Option<Vec<(RequestKind, bytes::Bytes)>> = rest
                .split(';')
                .map(|part| {
                    let tokens: Vec<&str> = part.split_whitespace().collect();
                    parse_op(&tokens).map(|(kind, op)| (kind, op.encode()))
                })
                .collect();
            match ops {
                Some(ops) if !ops.is_empty() => match client.run_txn(TxnScript { ops }) {
                    Some(TxnOutcome::Committed) => println!("committed"),
                    Some(TxnOutcome::Aborted(r)) => println!("aborted: {r:?}"),
                    None => println!("error: transaction timed out"),
                },
                _ => println!("parse error (txn put K V ; add K N ; ...)"),
            }
        } else {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match parse_op(&tokens) {
                Some((kind, op)) => show(client.call(kind, op.encode())),
                None => println!("parse error (get/put/del/add/txn/quit)"),
            }
        }
        print!("> ");
        std::io::stdout().flush().ok();
    }
}
