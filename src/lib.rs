//! Umbrella crate re-exporting the gridpaxos workspace.
pub use gridpaxos_core as core;
pub use gridpaxos_services as services;
pub use gridpaxos_simnet as simnet;
pub use gridpaxos_transport as transport;
