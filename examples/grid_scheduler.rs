//! The paper's second motivating application (§2): a *grid scheduling
//! service* à la the NILE Global Planner. Jobs are served FCFS, overridden
//! by priorities — and the outcome depends on **when** the scheduler
//! examines its queue, so the service is nondeterministic even though no
//! line of its code flips a coin.
//!
//! Part 1 demonstrates the divergence directly on two unreplicated
//! scheduler instances examining the queue at different times (the paper's
//! t1/t2 story). Part 2 runs the scheduler replicated and shows all
//! replicas agreeing on the leader's timing-dependent decisions.
//!
//! ```text
//! cargo run --example grid_scheduler
//! ```

use gridpaxos::core::prelude::*;
use gridpaxos::core::request::RequestId;
use gridpaxos::services::scheduler::VISIBILITY_DELAY;
use gridpaxos::services::{SchedOp, Scheduler};
use gridpaxos::simnet::workload::Driver;
use gridpaxos::simnet::{SimOpts, Topology, World};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn req(seq: u64, kind: RequestKind, op: &SchedOp) -> gridpaxos::core::request::Request {
    gridpaxos::core::request::Request::new(RequestId::new(ClientId(1), Seq(seq)), kind, op.encode())
}

fn demonstrate_divergence() {
    println!("— part 1: two unreplicated schedulers diverge —");
    // Job A (priority 1) arrives at t1; job B (priority 9) at t2 > t1.
    let t1 = Time(1_000_000);
    let t2 = Time(t1.0 + 500_000);

    fn exec(
        s: &mut Scheduler,
        rng: &mut SmallRng,
        r: &gridpaxos::core::request::Request,
        now: Time,
    ) -> bytes::Bytes {
        let mut ctx = gridpaxos::core::service::ExecCtx::new(now, rng);
        s.execute(r, &mut ctx).0
    }
    let run = |examine_at: Time| -> String {
        let mut s = Scheduler::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let add = req(
            1,
            RequestKind::Write,
            &SchedOp::AddMachine {
                name: "m".into(),
                slots: 1,
            },
        );
        let a = req(
            2,
            RequestKind::Write,
            &SchedOp::Submit {
                job: 1,
                priority: 1,
            },
        );
        let b = req(
            3,
            RequestKind::Write,
            &SchedOp::Submit {
                job: 2,
                priority: 9,
            },
        );
        let dispatch = req(4, RequestKind::Write, &SchedOp::Dispatch);
        exec(&mut s, &mut rng, &add, Time::ZERO);
        exec(&mut s, &mut rng, &a, t1);
        exec(&mut s, &mut rng, &b, t2);
        let reply = exec(&mut s, &mut rng, &dispatch, examine_at);
        String::from_utf8_lossy(&reply).into_owned()
    };

    let fast = run(Time(t1.0 + VISIBILITY_DELAY.0)); // examines early
    let slow = run(Time(t2.0 + VISIBILITY_DELAY.0)); // examines late
    println!("  fast scheduler (examines early): dispatches {fast}");
    println!("  slow scheduler (examines late):  dispatches {slow}");
    assert_ne!(
        fast, slow,
        "the same request sequence produced different schedules"
    );
    println!("  -> same requests, different outcomes: replication must ship decisions\n");
}

/// Submits jobs with mixed priorities, then dispatches them all.
struct SchedulerWorkload {
    steps: Vec<SchedOp>,
    next: usize,
    outstanding: bool,
}

impl Driver for SchedulerWorkload {
    fn kick(
        &mut self,
        core: &mut gridpaxos::core::client::ClientCore,
        now: Time,
    ) -> Option<Vec<Action>> {
        if self.outstanding || self.next >= self.steps.len() {
            return None;
        }
        let op = self.steps[self.next].clone();
        self.next += 1;
        self.outstanding = true;
        Some(core.submit_op(RequestKind::Write, op.encode(), now))
    }

    fn on_complete(
        &mut self,
        done: &gridpaxos::core::client::CompletedOp,
        _now: Time,
        _metrics: &mut gridpaxos::simnet::Metrics,
    ) {
        self.outstanding = false;
        if let (Some(SchedOp::Dispatch), ReplyBody::Ok(payload)) =
            (SchedOp::decode(done.req.op.clone()), &done.body)
        {
            println!("  dispatch -> {}", String::from_utf8_lossy(payload));
        }
    }

    fn done(&self) -> bool {
        !self.outstanding && self.next >= self.steps.len()
    }
}

fn main() {
    demonstrate_divergence();

    println!("— part 2: the replicated scheduler agrees everywhere —");
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 11);
    let mut world = World::new(cfg, opts, Box::new(|| Box::new(Scheduler::new())));

    let mut steps = vec![
        SchedOp::AddMachine {
            name: "worker-1".into(),
            slots: 2,
        },
        SchedOp::AddMachine {
            name: "worker-2".into(),
            slots: 2,
        },
    ];
    for job in 0..6u64 {
        steps.push(SchedOp::Submit {
            job,
            priority: (job % 3) as u32,
        });
    }
    for _ in 0..4 {
        steps.push(SchedOp::Dispatch);
    }
    world.add_client(
        Box::new(SchedulerWorkload {
            steps,
            next: 0,
            outstanding: false,
        }),
        None,
        Time(Dur::from_millis(200).0),
    );

    let finished = world.run_to_completion(Time(Dur::from_secs(60).0));
    assert!(finished);
    let settle = world.now.after(Dur::from_secs(1));
    world.run_until(settle);

    let states = world.replica_states();
    assert!(states.windows(2).all(|w| w[0] == w[1]), "replicas diverged");
    println!(
        "\nall {} replicas hold the identical schedule (chosen prefix {})",
        states.len(),
        states[0].0
    );
}
