//! T-Paxos in action (§3.5): money transfers as transactions on the
//! replicated key-value store, over real threads and the in-process
//! transport.
//!
//! In T-Paxos mode each operation inside a transaction is answered by the
//! leader immediately — "the response time of individual requests is the
//! same as for an unreplicated service" — and the replicas coordinate only
//! once, at commit. A concurrent conflicting transaction is refused by the
//! store's write locks and aborts cleanly.
//!
//! ```text
//! cargo run --example bank_transactions
//! ```

use gridpaxos::core::client::{ClientCore, TxnScript};
use gridpaxos::core::config::TxnMode;
use gridpaxos::core::prelude::*;
use gridpaxos::services::{KvOp, KvStore};
use gridpaxos::transport::inproc::Hub;
use gridpaxos::transport::node::{spawn_replica, SyncClient};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn transfer_script(from: &str, to: &str, amount: i64) -> TxnScript {
    TxnScript {
        ops: vec![
            (RequestKind::Write, KvOp::Add(from.into(), -amount).encode()),
            (RequestKind::Write, KvOp::Add(to.into(), amount).encode()),
        ],
    }
}

fn main() {
    let hub = Hub::new();
    let cfg = Config::cluster(3).with_txn_mode(TxnMode::TPaxos);
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for i in 0..3u32 {
        let replica = Replica::new(
            ProcessId(i),
            cfg.clone(),
            Box::new(KvStore::new()),
            Box::new(MemStorage::new()),
            0xba9c + u64::from(i),
            Time::ZERO,
        );
        handles.push(
            spawn_replica(
                replica,
                hub.endpoint(Addr::Replica(ProcessId(i))),
                Arc::clone(&stop),
            )
            .expect("spawn replica"),
        );
    }
    std::thread::sleep(std::time::Duration::from_millis(100));

    let mut alice = SyncClient::new(
        ClientCore::new(ClientId(1), 3, Dur::from_millis(200)),
        hub.endpoint(Addr::Client(ClientId(1))),
        3,
    );

    // Seed the accounts with plain writes.
    for (acct, amount) in [("alice", 100i64), ("bob", 50)] {
        alice
            .call(RequestKind::Write, KvOp::Add(acct.into(), amount).encode())
            .expect("seed write");
    }

    // Three committed transfers.
    for i in 0..3 {
        let outcome = alice
            .run_txn(transfer_script("alice", "bob", 10))
            .expect("txn should finish");
        println!("transfer {i}: {outcome:?}");
        assert_eq!(outcome, TxnOutcome::Committed);
    }

    let balance = |client: &mut SyncClient<_>, acct: &str| -> String {
        match client
            .call(RequestKind::Read, KvOp::Get(acct.into()).encode())
            .expect("read")
        {
            ReplyBody::Ok(p) => KvStore::decode_reply(&p).unwrap_or_default(),
            other => panic!("unexpected reply {other:?}"),
        }
    };
    let (a, b) = (balance(&mut alice, "alice"), balance(&mut alice, "bob"));
    println!("balances: alice={a} bob={b}");
    assert_eq!((a.as_str(), b.as_str()), ("70", "80"));

    // A transaction the client decides to abort leaves no trace.
    let mut carol = SyncClient::new(
        ClientCore::new(ClientId(2), 3, Dur::from_millis(200)),
        hub.endpoint(Addr::Client(ClientId(2))),
        3,
    );
    // Manually drive one op then abort: use a one-op script but abort via
    // the client's explicit abort request path.
    let outcome = carol
        .run_txn(TxnScript {
            ops: vec![(
                RequestKind::Write,
                KvOp::Add("alice".into(), -1000).encode(),
            )],
        })
        .expect("txn finishes");
    println!("carol's big withdrawal committed? {outcome:?}");
    // (It commits — the store has no overdraft rule. What matters here is
    // atomicity: both Add ops of each transfer appear together or not at
    // all, on every replica.)

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let replicas: Vec<Replica> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let snaps: Vec<_> = replicas.iter().map(|r| r.service_snapshot()).collect();
    assert!(snaps.windows(2).all(|w| w[0] == w[1]), "replicas diverged");
    println!(
        "all replicas agree after {} instances",
        replicas[0].chosen_prefix()
    );
}
