//! The paper's first motivating application (§2): a *distributed grid
//! resource broker* that selects resources with a randomized load-balancing
//! algorithm — so independently-executing replicas would diverge.
//!
//! This example runs the broker replicated on the simulated Sysnet cluster,
//! allocates tasks, crashes the leader mid-workload, and shows that the
//! randomized decisions survive the failover consistently on all replicas.
//!
//! ```text
//! cargo run --example resource_broker
//! ```

use bytes::Bytes;
use gridpaxos::core::prelude::*;
use gridpaxos::services::{Broker, BrokerOp};
use gridpaxos::simnet::workload::{Driver, OpLoop};
use gridpaxos::simnet::{SimOpts, Topology, World};

/// A driver that first registers resources, then requests allocations.
struct BrokerWorkload {
    setup: Vec<BrokerOp>,
    allocations: u64,
    issued_setup: usize,
    issued_alloc: u64,
    outstanding: bool,
}

impl Driver for BrokerWorkload {
    fn kick(
        &mut self,
        core: &mut gridpaxos::core::client::ClientCore,
        now: Time,
    ) -> Option<Vec<Action>> {
        if self.outstanding {
            return None;
        }
        let op = if self.issued_setup < self.setup.len() {
            let op = self.setup[self.issued_setup].clone();
            self.issued_setup += 1;
            op
        } else if self.issued_alloc < self.allocations {
            let task = self.issued_alloc;
            self.issued_alloc += 1;
            BrokerOp::Request { task, units: 1 }
        } else {
            return None;
        };
        self.outstanding = true;
        Some(core.submit_op(RequestKind::Write, op.encode(), now))
    }

    fn on_complete(
        &mut self,
        done: &gridpaxos::core::client::CompletedOp,
        _now: Time,
        _metrics: &mut gridpaxos::simnet::Metrics,
    ) {
        self.outstanding = false;
        if let (Some(BrokerOp::Request { task, .. }), ReplyBody::Ok(payload)) =
            (BrokerOp::decode(done.req.op.clone()), &done.body)
        {
            println!(
                "  task {task:>2} -> {} (answered by {})",
                String::from_utf8_lossy(payload),
                done.leader
            );
        }
    }

    fn done(&self) -> bool {
        !self.outstanding
            && self.issued_setup == self.setup.len()
            && self.issued_alloc == self.allocations
    }
}

fn main() {
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 7);
    let mut world = World::new(cfg, opts, Box::new(|| Box::new(Broker::new())));

    let setup = ["compute-a", "compute-b", "compute-c", "storage-x"]
        .iter()
        .map(|name| BrokerOp::AddResource {
            name: (*name).to_owned(),
            capacity: 8,
        })
        .collect();
    world.add_client(
        Box::new(BrokerWorkload {
            setup,
            allocations: 12,
            issued_setup: 0,
            issued_alloc: 0,
            outstanding: false,
        }),
        None,
        Time(Dur::from_millis(200).0),
    );
    // A second client hammers reads concurrently (X-Paxos path).
    world.add_client(
        Box::new(OpLoop::with_payload(
            RequestKind::Read,
            30,
            BrokerOp::FreeUnits.encode(),
        )),
        None,
        Time(Dur::from_millis(200).0),
    );

    // Kill the leader mid-run; recover it two seconds later.
    world.crash_at(ProcessId(0), Time(Dur::from_millis(205).0));
    world.recover_at(ProcessId(0), Time(Dur::from_millis(2000).0));

    println!("allocating 12 tasks across 4 resources (leader crashes mid-run):");
    let finished = world.run_to_completion(Time(Dur::from_secs(120).0));
    assert!(finished, "workload must survive the leader crash");

    // Let the recovered replica catch up, then compare all three brokers.
    let settle = world.now.after(Dur::from_secs(2));
    world.run_until(settle);
    let states: Vec<(Instance, Bytes)> = world.replica_states();
    assert_eq!(states.len(), 3);
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged despite randomized decisions"
    );
    println!(
        "\nall replicas agree on every randomized placement (chosen prefix {})",
        states[0].0
    );
    println!("leader after failover: {:?}", world.leader());
}
