//! Quickstart: a replicated key-value store on three in-process replicas.
//!
//! Demonstrates the 90-second path from zero to a fault-tolerant service:
//! spawn three replica threads connected by the in-process transport, wait
//! for the leader election, then issue writes, X-Paxos reads and a
//! T-Paxos-eligible transaction through a blocking client.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gridpaxos::core::client::ClientCore;
use gridpaxos::core::config::Config;
use gridpaxos::core::prelude::*;
use gridpaxos::services::{KvOp, KvStore};
use gridpaxos::transport::inproc::Hub;
use gridpaxos::transport::node::{spawn_replica, SyncClient};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn main() {
    // 1. A hub wires the processes together (swap for the TCP transport in
    //    a real deployment — the protocol code is identical).
    let hub = Hub::new();
    let cfg = Config::cluster(3);
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for i in 0..3u32 {
        let replica = Replica::new(
            ProcessId(i),
            cfg.clone(),
            Box::new(KvStore::new()),
            Box::new(MemStorage::new()),
            0xc0ffee + u64::from(i),
            Time::ZERO,
        );
        let endpoint = hub.endpoint(Addr::Replica(ProcessId(i)));
        handles.push(spawn_replica(replica, endpoint, Arc::clone(&stop)).expect("spawn replica"));
    }

    // 2. A blocking client that broadcasts to the whole group (§3.3:
    //    clients never need to know who leads).
    let client_id = ClientId(1);
    let core = ClientCore::new(client_id, 3, Dur::from_millis(200));
    let endpoint = hub.endpoint(Addr::Client(client_id));
    let mut client = SyncClient::new(core, endpoint, 3);

    // Give the bootstrap election a moment.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // 3. Writes go through the basic protocol (consensus on ⟨req, state⟩).
    let put = KvOp::Put("greeting".into(), "hello, grid".into());
    let reply = client
        .call(RequestKind::Write, put.encode())
        .expect("write should complete");
    println!("put  -> {reply:?}");

    // 4. Reads take the X-Paxos fast path: no consensus instance, just a
    //    majority of leadership confirmations.
    let get = KvOp::Get("greeting".into());
    let reply = client
        .call(RequestKind::Read, get.encode())
        .expect("read should complete");
    if let ReplyBody::Ok(payload) = &reply {
        println!("get  -> {:?}", KvStore::decode_reply(payload));
    }

    // 5. Counters survive concurrent increments because every write is
    //    sequenced by the leader.
    for _ in 0..5 {
        let inc = KvOp::Add("hits".into(), 1);
        client
            .call(RequestKind::Write, inc.encode())
            .expect("increment should complete");
    }
    let reply = client
        .call(RequestKind::Read, KvOp::Get("hits".into()).encode())
        .expect("read should complete");
    if let ReplyBody::Ok(payload) = &reply {
        println!("hits -> {:?}", KvStore::decode_reply(payload));
        assert_eq!(KvStore::decode_reply(payload).as_deref(), Some("5"));
    }

    // 6. Shut down and inspect the replicas: all three hold the same state.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let replicas: Vec<Replica> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let snaps: Vec<_> = replicas.iter().map(|r| r.service_snapshot()).collect();
    assert!(snaps.windows(2).all(|w| w[0] == w[1]), "replicas diverged!");
    println!(
        "all {} replicas converged at instance {}",
        replicas.len(),
        replicas[0].chosen_prefix()
    );
}
