//! Fault-tolerance timeline: crash the leader, watch the failover, crash
//! the new leader too, recover everyone, and verify no committed write was
//! lost and every replica converged — all on the deterministic simulator,
//! so the run is reproducible bit for bit.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use gridpaxos::core::prelude::*;
use gridpaxos::simnet::workload::OpLoop;
use gridpaxos::simnet::{SimOpts, Topology, World};

fn status(world: &World, label: &str) {
    let states: Vec<String> = (0..3u32)
        .map(|p| match world.replica(ProcessId(p)) {
            Some(r) => format!(
                "r{p}:{}{}",
                r.role().name().chars().next().unwrap(),
                r.chosen_prefix()
            ),
            None => format!("r{p}:DOWN"),
        })
        .collect();
    println!(
        "t={:>6.2}s  {:<22} [{}]  leader={:?}  completed={}",
        world.now.as_secs_f64(),
        label,
        states.join(" "),
        world.leader(),
        world.metrics.completed_ops
    );
}

fn main() {
    let cfg = Config::cluster(3);
    let opts = SimOpts::for_topology(Topology::sysnet(3), 99);
    let mut world = World::new(cfg, opts, Box::new(|| Box::new(NoopApp::new())));

    // Four clients write continuously through every disruption.
    for _ in 0..4 {
        world.add_client(
            Box::new(OpLoop::new(RequestKind::Write, 60_000)),
            None,
            Time(Dur::from_millis(100).0),
        );
    }

    // Fault schedule:          crash        recover
    //   r0 (bootstrap leader)  1.0 s        3.0 s
    //   r1 (likely successor)  5.0 s        7.0 s
    world.crash_at(ProcessId(0), Time(Dur::from_secs(1).0));
    world.recover_at(ProcessId(0), Time(Dur::from_secs(3).0));
    world.crash_at(ProcessId(1), Time(Dur::from_secs(5).0));
    world.recover_at(ProcessId(1), Time(Dur::from_secs(7).0));

    for (t_ms, label) in [
        (500, "steady state"),
        (1200, "r0 crashed"),
        (2000, "after failover"),
        (3500, "r0 recovered"),
        (5200, "r1 crashed"),
        (7500, "all recovered"),
    ] {
        world.run_until(Time(Dur::from_millis(t_ms).0));
        status(&world, label);
    }

    let finished = world.run_to_completion(Time(Dur::from_secs(600).0));
    assert!(finished, "workload must finish despite two leader crashes");
    let settle = world.now.after(Dur::from_secs(2));
    world.run_until(settle);
    status(&world, "workload finished");

    let states = world.replica_states();
    assert_eq!(states.len(), 3, "everyone is back up");
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged across crashes"
    );
    println!(
        "\n240,000 writes committed across two leader crashes; all replicas at instance {} with identical state",
        states[0].0
    );
    println!(
        "client retransmissions during failovers: {}",
        world.metrics.retries
    );
}
